package asm

import (
	"strings"
	"testing"

	"mssr/internal/isa"
)

func TestBuilderBasic(t *testing.T) {
	b := NewBuilder("basic")
	b.Li(isa.T0, 10)
	b.Label("loop")
	b.Addi(isa.T0, isa.T0, -1)
	b.Bnez(isa.T0, "loop")
	b.Halt()
	p, err := b.Program()
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Code) != 4 {
		t.Fatalf("code length = %d", len(p.Code))
	}
	if p.Symbols["loop"] != p.Base+4 {
		t.Errorf("loop = %#x, want %#x", p.Symbols["loop"], p.Base+4)
	}
	if p.Code[2].Target != p.Base+4 {
		t.Errorf("branch target = %#x", p.Code[2].Target)
	}
}

func TestBuilderAllHelpers(t *testing.T) {
	b := NewBuilder("all")
	b.Label("top")
	b.Add(1, 2, 3).Sub(1, 2, 3).And(1, 2, 3).Or(1, 2, 3).Xor(1, 2, 3)
	b.Sll(1, 2, 3).Srl(1, 2, 3).Sra(1, 2, 3).Slt(1, 2, 3).Sltu(1, 2, 3)
	b.Mul(1, 2, 3).Div(1, 2, 3).Rem(1, 2, 3).Min(1, 2, 3).Max(1, 2, 3)
	b.Addi(1, 2, 5).Andi(1, 2, 5).Ori(1, 2, 5).Xori(1, 2, 5)
	b.Slli(1, 2, 5).Srli(1, 2, 5).Srai(1, 2, 5).Slti(1, 2, 5)
	b.Li(1, 99).Mv(4, 1).Nop()
	b.Ld(1, 8, 2).St(1, 8, 2)
	b.Beq(1, 2, "top").Bne(1, 2, "top").Blt(1, 2, "top").Bge(1, 2, "top")
	b.Bltu(1, 2, "top").Bgeu(1, 2, "top").Beqz(1, "top").Bnez(1, "top")
	b.J("top").Jal(isa.RA, "top").Jalr(isa.Zero, isa.RA, 0).Ret()
	b.Halt()
	p, err := b.Program()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	wantOps := []isa.Op{
		isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR,
		isa.SLL, isa.SRL, isa.SRA, isa.SLT, isa.SLTU,
		isa.MUL, isa.DIV, isa.REM, isa.MIN, isa.MAX,
		isa.ADDI, isa.ANDI, isa.ORI, isa.XORI,
		isa.SLLI, isa.SRLI, isa.SRAI, isa.SLTI,
		isa.LI, isa.ADDI, isa.NOP,
		isa.LD, isa.ST,
		isa.BEQ, isa.BNE, isa.BLT, isa.BGE,
		isa.BLTU, isa.BGEU, isa.BEQ, isa.BNE,
		isa.JAL, isa.JAL, isa.JALR, isa.JALR,
		isa.HALT,
	}
	if len(p.Code) != len(wantOps) {
		t.Fatalf("code length = %d, want %d", len(p.Code), len(wantOps))
	}
	for i, op := range wantOps {
		if p.Code[i].Op != op {
			t.Errorf("insn %d op = %v, want %v", i, p.Code[i].Op, op)
		}
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder("dup")
	b.Label("x").Nop().Label("x").Halt()
	if _, err := b.Program(); err == nil {
		t.Error("duplicate label accepted")
	}
	b = NewBuilder("undef")
	b.J("nowhere").Halt()
	if _, err := b.Program(); err == nil {
		t.Error("undefined label accepted")
	}
	b = NewBuilder("late-base")
	b.Nop()
	b.SetBase(0x4000)
	if _, err := b.Program(); err == nil {
		t.Error("SetBase after emit accepted")
	}
}

func TestBuilderMustProgramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustProgram on bad builder should panic")
		}
	}()
	NewBuilder("bad").J("missing").MustProgram()
}

func TestBuilderData(t *testing.T) {
	p := NewBuilder("d").Data(0x2000, 1, 2, 3).Halt().MustProgram()
	if len(p.Data) != 1 || p.Data[0].Addr != 0x2000 || len(p.Data[0].Words) != 3 {
		t.Fatalf("data = %+v", p.Data)
	}
}

func TestAssembleRoundTrip(t *testing.T) {
	src := `
# count down from 5, accumulating into a0
.base 0x2000
.data 0x8000 7 11
    li   t0, 5
    li   a0, 0
loop:
    add  a0, a0, t0
    addi t0, t0, -1
    bnez t0, loop
    ld   t1, 0(s0)
    st   t1, 8(s0)
    j    done
    nop
done:
    halt
`
	p, err := Assemble("roundtrip", src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Base != 0x2000 {
		t.Errorf("base = %#x", p.Base)
	}
	if len(p.Data) != 1 || p.Data[0].Words[1] != 11 {
		t.Errorf("data = %+v", p.Data)
	}
	if p.Symbols["done"] != p.Base+9*isa.InstrBytes {
		t.Errorf("done = %#x", p.Symbols["done"])
	}
	// The j at index 8 targets done.
	if p.Code[7].Op != isa.JAL || p.Code[7].Target != p.Symbols["done"] {
		t.Errorf("jump = %v", p.Code[7])
	}
	text := Listing(p)
	if !strings.Contains(text, "loop:") || !strings.Contains(text, "halt") {
		t.Errorf("listing missing content:\n%s", text)
	}
}

func TestAssembleInstructionForms(t *testing.T) {
	src := `
start:
  add x1, x2, x3
  addi x1, x2, 0x10
  mul a0, a1, a2
  ld t0, -8(sp)
  st t0, (sp)
  beq x1, x2, start
  jal start
  jal t0, start
  jalr ra, t0, 4
  ret
  mv a0, a1
  halt
`
	p, err := Assemble("forms", src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Code[1].Imm != 16 {
		t.Errorf("hex imm = %d", p.Code[1].Imm)
	}
	if p.Code[3].Imm != -8 || p.Code[3].Rs1 != isa.SP {
		t.Errorf("ld operand = %+v", p.Code[3])
	}
	if p.Code[4].Imm != 0 {
		t.Errorf("st with empty offset = %+v", p.Code[4])
	}
	if p.Code[6].Rd != isa.RA {
		t.Errorf("jal default link = %v", p.Code[6].Rd)
	}
	if p.Code[9].Op != isa.JALR || p.Code[9].Rs1 != isa.RA {
		t.Errorf("ret = %+v", p.Code[9])
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []string{
		"bogus x1, x2",
		"add x1, x2",
		"add x1, x2, x99",
		"addi x1, x2, zz",
		"ld x1, 8[x2]",
		"beq x1, x2",
		"li x1",
		": halt",
		"jalr ra",
		".data",
		"j",
		"mv a0",
		"beqz a0",
	}
	for _, src := range cases {
		if _, err := Assemble("bad", src+"\nhalt\n"); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestMustAssemblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAssemble on bad source should panic")
		}
	}()
	MustAssemble("bad", "frobnicate x1\nhalt")
}
