package asm

import (
	"testing"

	"mssr/internal/emu"
)

// FuzzAssemble checks the text assembler never panics and that every
// program it accepts validates and (if it halts quickly) executes without
// faulting the emulator.
func FuzzAssemble(f *testing.F) {
	seeds := []string{
		"halt",
		"li t0, 5\nloop: addi t0, t0, -1\nbnez t0, loop\nhalt",
		".base 0x4000\n.data 0x8000 1 2 3\nld a0, 0(s0)\nst a0, 8(s0)\nhalt",
		"add x1, x2, x3\nbeq x1, x2, nowhere",
		"jalr ra, t0, 4\nret\nj done\ndone: halt",
		": bad",
		"li x99, 1",
		"addi x1, x2, 0xzz",
		".data\nhalt",
		"label: label2: halt",
		"mul a0, a1, a2 # comment ; another",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Assemble("fuzz", src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		if verr := p.Validate(); verr != nil {
			t.Fatalf("Assemble accepted a program that fails Validate: %v", verr)
		}
		// Execute with a small budget; nontermination is fine, faults not.
		e := emu.New(p)
		for i := 0; i < 10000 && !e.Halted; i++ {
			if !p.Contains(e.PC) {
				// Running off the program is a program bug the assembler
				// cannot prevent (e.g. missing halt); stop gracefully.
				return
			}
			e.Step()
		}
	})
}
