// Package cli holds the small helpers the msr* commands share.
package cli

import (
	"fmt"
	"log/slog"
	"os"
)

// BuildLogger constructs a daemon's structured logger from -log-level
// and -log-format flag values. Level "off" returns nil, which the
// daemons treat as discard.
func BuildLogger(level, format string) (*slog.Logger, error) {
	var lv slog.Level
	switch level {
	case "debug":
		lv = slog.LevelDebug
	case "info", "":
		lv = slog.LevelInfo
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	case "off":
		return nil, nil
	default:
		return nil, fmt.Errorf("unknown -log-level %q (debug, info, warn, error, off)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "text", "":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	}
	return nil, fmt.Errorf("unknown -log-format %q (text, json)", format)
}
