// Package storage implements the paper's Table 2 cost model: the exact
// register-bit accounting of the multi-stream squash reuse structures —
// Wrong-Path Buffers, Squash Logs, the extended ROB and RAT/checkpoint
// RGID state — split into the constant term (independent of the stream
// configuration) and the variable term parameterized by N (streams),
// M (WPB fetch-block entries per stream) and P (Squash Log entries per
// stream).
package storage

import (
	"fmt"
	"math"
	"strings"
)

// Params parameterizes the cost model; Default matches the paper's
// typical configuration (N=4, M=16, P=64) and its structural constants.
type Params struct {
	// Streams (N), WPBEntries (M), LogEntries (P).
	Streams    int
	WPBEntries int
	LogEntries int

	// RGIDBits is the generation tag width (6 in Table 2).
	RGIDBits int
	// ArchRegs is the architectural register count (64 in Table 2).
	ArchRegs int
	// ROBEntries is the reorder buffer size (256 in Table 2).
	ROBEntries int
	// RATCheckpoints is the checkpoint count (32 in Table 2).
	RATCheckpoints int
	// SrcRegs and DstRegs per instruction (3 and 1 in Table 2).
	SrcRegs int
	DstRegs int
	// PhysRegBits is the physical register name width (8 in Table 2).
	PhysRegBits int
	// VPNBits is the virtual page number width (36 = PC[47:12], sv48).
	VPNBits int
	// BlockPCBits is the in-page block PC width (11 = PC[11:1]).
	BlockPCBits int
}

// Default returns the paper's Table 2 parameters.
func Default() Params {
	return Params{
		Streams:        4,
		WPBEntries:     16,
		LogEntries:     64,
		RGIDBits:       6,
		ArchRegs:       64,
		ROBEntries:     256,
		RATCheckpoints: 32,
		SrcRegs:        3,
		DstRegs:        1,
		PhysRegBits:    8,
		VPNBits:        36,
		BlockPCBits:    11,
	}
}

func log2ceil(n int) int {
	if n <= 1 {
		return 0
	}
	return int(math.Ceil(math.Log2(float64(n))))
}

// Breakdown is the per-structure bit cost.
type Breakdown struct {
	WPBPointers    int // stream read/write + entry read pointers
	WPBVPN         int // one VPN register per stream
	WPBEntries     int // valid + start PC + end PC per block entry
	LogPointers    int
	LogEntries     int // valid + src/dst RGIDs + dst physical register
	ROBRGIDs       int // RGIDs recorded in the ROB
	RATRGIDs       int // RGID per architectural register mapping
	RATCheckpoints int // RGID state in every RAT checkpoint
}

// Constant returns the configuration-independent bits (ROB + RAT +
// checkpoints).
func (b Breakdown) Constant() int { return b.ROBRGIDs + b.RATRGIDs + b.RATCheckpoints }

// Variable returns the N/M/P-dependent bits (WPB + Squash Log).
func (b Breakdown) Variable() int {
	return b.WPBPointers + b.WPBVPN + b.WPBEntries + b.LogPointers + b.LogEntries
}

// Total returns all additional storage bits.
func (b Breakdown) Total() int { return b.Constant() + b.Variable() }

// Compute evaluates the Table 2 model for p.
func Compute(p Params) Breakdown {
	var b Breakdown
	// Wrong-Path Buffer: stream read/write pointers (log2 N each), entry
	// read pointer (log2 M), one VPN per stream, and M block entries per
	// stream of {valid, start PC, end PC}.
	b.WPBPointers = 2*log2ceil(p.Streams) + log2ceil(p.WPBEntries)
	b.WPBVPN = p.Streams * p.VPNBits
	b.WPBEntries = p.Streams * p.WPBEntries * (1 + 2*p.BlockPCBits)
	// Squash Log: the same three pointers plus P instruction entries per
	// stream of {valid, source RGIDs, destination RGID, destination
	// physical register}.
	b.LogPointers = 2*log2ceil(p.Streams) + log2ceil(p.LogEntries)
	entryBits := 1 + (p.SrcRegs+p.DstRegs)*p.RGIDBits + p.DstRegs*p.PhysRegBits
	b.LogEntries = p.Streams * p.LogEntries * entryBits
	// ROB extension: all source and destination RGIDs per entry.
	b.ROBRGIDs = (p.SrcRegs + p.DstRegs) * p.RGIDBits * p.ROBEntries
	// RAT extension and its checkpoints: one RGID per mapping.
	b.RATRGIDs = p.ArchRegs * p.RGIDBits
	b.RATCheckpoints = p.ArchRegs * p.RGIDBits * p.RATCheckpoints
	return b
}

// KB converts bits to kilobytes (1024 bytes).
func KB(bits int) float64 { return float64(bits) / 8 / 1024 }

// Table renders the Table 2 summary for p.
func Table(p Params) string {
	b := Compute(p)
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 2: additional storage (N=%d streams, M=%d WPB entries, P=%d log entries)\n",
		p.Streams, p.WPBEntries, p.LogEntries)
	fmt.Fprintf(&sb, "  %-38s %8s\n", "Structure", "Bits")
	row := func(name string, bits int) { fmt.Fprintf(&sb, "  %-38s %8d\n", name, bits) }
	row("WPB pointers", b.WPBPointers)
	row("WPB VPN registers", b.WPBVPN)
	row("WPB entries (valid+start+end)", b.WPBEntries)
	row("Squash Log pointers", b.LogPointers)
	row("Squash Log entries", b.LogEntries)
	row("ROB RGIDs", b.ROBRGIDs)
	row("RAT RGIDs", b.RATRGIDs)
	row("RAT checkpoint RGIDs", b.RATCheckpoints)
	fmt.Fprintf(&sb, "  %-38s %8d (%.2f KB)\n", "Constant subtotal", b.Constant(), KB(b.Constant()))
	fmt.Fprintf(&sb, "  %-38s %8d (%.2f KB)\n", "Variable subtotal", b.Variable(), KB(b.Variable()))
	fmt.Fprintf(&sb, "  %-38s %8d (%.2f KB)\n", "Total", b.Total(), KB(b.Total()))
	return sb.String()
}
