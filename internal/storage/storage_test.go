package storage

import (
	"strings"
	"testing"
)

// TestPaperNumbers checks the model against every number Table 2 states
// for the typical configuration (N=4, M=16, P=64).
func TestPaperNumbers(t *testing.T) {
	b := Compute(Default())
	if got := b.ROBRGIDs; got != 4*6*256 {
		t.Errorf("ROB RGIDs = %d, want %d", got, 4*6*256)
	}
	if got := b.RATRGIDs; got != 64*6 {
		t.Errorf("RAT RGIDs = %d, want %d", got, 64*6)
	}
	if got := b.RATCheckpoints; got != 64*6*32 {
		t.Errorf("RAT checkpoint RGIDs = %d, want %d", got, 64*6*32)
	}
	if got := b.Constant(); got != 18816 {
		t.Errorf("constant = %d bits, paper says 18816", got)
	}
	// Variable term: the paper's closed form
	// (23M + 33P + 36)N + log2(M*P*N^4) = 10082 bits for N=4,M=16,P=64.
	if got := b.Variable(); got != 10082 {
		t.Errorf("variable = %d bits, paper's formula gives 10082", got)
	}
	if kb := KB(b.Total()); kb < 3.52 || kb > 3.54 {
		t.Errorf("total = %.3f KB, paper says 3.53 KB", kb)
	}
}

// TestVariableMatchesClosedForm cross-checks the structural accounting
// against the paper's closed-form expression over a sweep of N, M, P.
func TestVariableMatchesClosedForm(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8} {
		for _, m := range []int{4, 16, 64} {
			for _, pp := range []int{16, 64, 128} {
				p := Default()
				p.Streams, p.WPBEntries, p.LogEntries = n, m, pp
				b := Compute(p)
				want := (23*m+33*pp+36)*n + log2ceil(m) + log2ceil(pp) + 4*log2ceil(n)
				if got := b.Variable(); got != want {
					t.Errorf("N=%d M=%d P=%d: variable = %d, closed form = %d", n, m, pp, got, want)
				}
			}
		}
	}
}

func TestMonotonicity(t *testing.T) {
	base := Compute(Default()).Total()
	p := Default()
	p.Streams = 8
	if Compute(p).Total() <= base {
		t.Error("more streams must cost more bits")
	}
	p = Default()
	p.LogEntries = 128
	if Compute(p).Total() <= base {
		t.Error("deeper logs must cost more bits")
	}
	p = Default()
	p.RGIDBits = 12
	if Compute(p).Total() <= base {
		t.Error("wider RGIDs must cost more bits")
	}
}

func TestTableRendering(t *testing.T) {
	s := Table(Default())
	for _, want := range []string{"2.30 KB", "1.23 KB", "3.53 KB", "Squash Log entries"} {
		if !strings.Contains(s, want) {
			t.Errorf("table missing %q:\n%s", want, s)
		}
	}
}

func TestLog2Ceil(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 64: 6, 100: 7}
	for in, want := range cases {
		if got := log2ceil(in); got != want {
			t.Errorf("log2ceil(%d) = %d, want %d", in, got, want)
		}
	}
}
