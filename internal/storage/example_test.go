package storage_test

import (
	"fmt"

	"mssr/internal/storage"
)

// Evaluate the paper's Table 2 storage model at its typical configuration.
func ExampleCompute() {
	b := storage.Compute(storage.Default())
	fmt.Printf("constant: %d bits (%.2f KB)\n", b.Constant(), storage.KB(b.Constant()))
	fmt.Printf("variable: %d bits (%.2f KB)\n", b.Variable(), storage.KB(b.Variable()))
	fmt.Printf("total:    %.2f KB\n", storage.KB(b.Total()))
	// Output:
	// constant: 18816 bits (2.30 KB)
	// variable: 10082 bits (1.23 KB)
	// total:    3.53 KB
}
