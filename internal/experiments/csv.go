package experiments

import (
	"fmt"
	"strings"
)

// CSV renders the Figure 10 sweep in the paper artifact's rollup format
// (appendix A.6): one row per configuration and benchmark with the
// simulated cycle count and the relative runtime improvement over the
// baseline.
//
//	CFG,BM,CYCLES,diff
//	RCVG_4_64,bfs,76244487.0,0.050558
func (r *Figure10Result) CSV() string {
	var sb strings.Builder
	sb.WriteString("CFG,BM,CYCLES,diff\n")
	for _, name := range r.Workloads {
		base := r.Stats[name+"/baseline"]
		fmt.Fprintf(&sb, "BASE,%s,%d,0.000000\n", name, base.Cycles)
		for _, c := range r.Configs {
			st := r.Stats[name+"/"+c]
			cfg := "RCVG_" + strings.ReplaceAll(c, "x", "_")
			fmt.Fprintf(&sb, "%s,%s,%d,%f\n", cfg, name, st.Cycles, r.Improvement[name][c])
		}
	}
	return sb.String()
}

// CSV renders the Table 1 comparison in the same rollup format.
func (r *Table1Result) CSV() string {
	var sb strings.Builder
	sb.WriteString("CFG,BM,CYCLES,diff\n")
	for _, v := range r.Variants {
		for _, c := range r.Configs {
			st := r.Stats[v+"/"+c]
			fmt.Fprintf(&sb, "%s,%s,%d,%f\n", strings.ToUpper(strings.ReplaceAll(c, "-", "_")), v, st.Cycles, r.Speedup[v][c])
		}
	}
	return sb.String()
}
