// Package experiments regenerates every table and figure of the paper's
// evaluation from the simulator:
//
//	Table 1  — microbenchmark speedups (multi-stream vs Register
//	           Integration at matched capacities)
//	Table 2  — additional storage (analytical, internal/storage)
//	Table 3  — baseline configuration echo
//	Table 4  — synthesis complexity (analytical, internal/synth)
//	Figure 3 — RI reuse-table replacement-frequency heatmap
//	Figure 4 — reconvergence-type breakdown
//	Figure 10 — IPC improvement across stream/WPB configurations
//	Figure 11 — reconvergence stream-distance breakdown
//	Figure 12 — RGID vs RI across matched configurations on GAP
//
// Each experiment returns a structured result plus a Render method that
// prints rows in the shape of the paper's artifact (CSV-like tables and
// ASCII heatmaps). Simulations within an experiment run in parallel.
package experiments

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"mssr/internal/sim"
	"mssr/internal/stats"
)

// The experiments share one sim.Backend; msrbench swaps it to thread
// its -jobs bound and -progress/-json observers through every
// experiment, or — with -remote — to submit every sweep to an msrd
// daemon through internal/client instead of simulating in-process.
// Batching is on by default: the figure/phase sweeps submit many specs
// over the same workload, which the runner folds into lockstep batch
// groups (bit-identical results, one shared instruction stream each).
var (
	runnerMu sync.Mutex
	runner   sim.Backend = &sim.Runner{Batching: true}
)

// SetRunner replaces the backend all experiments execute through.
func SetRunner(r sim.Backend) {
	runnerMu.Lock()
	defer runnerMu.Unlock()
	runner = r
}

func currentRunner() sim.Backend {
	runnerMu.Lock()
	defer runnerMu.Unlock()
	return runner
}

// runSpecs executes specs through the shared sim.Runner and returns
// stats keyed by spec key. On failure the map still holds every
// successful run and the error names every failed job.
func runSpecs(specs []sim.Spec) (map[string]*stats.Stats, error) {
	res, err := currentRunner().Run(context.Background(), specs)
	results := make(map[string]*stats.Stats, len(res))
	for i := range res {
		if res[i].Err == nil && res[i].Stats != nil {
			results[res[i].Key] = res[i].Stats
		}
	}
	return results, err
}

// baseSpec, rgidSpec, riSpec and dirSpec build the specs the experiment
// drivers sweep over, keyed "workload/config" as the result tables
// expect. They describe runs by registry workload name and scale — not
// by pre-built program — so every sweep is wire-serializable and can be
// submitted to an msrd daemon, where the spec's canonical key addresses
// the daemon's result cache. All of them apply the SetSampling knob, so
// msrbench -stats-interval attaches interval telemetry to every sweep.
func baseSpec(key, workload string, scale int) sim.Spec {
	return sampled(sim.Spec{Label: key, Workload: workload, Scale: scale})
}

func rgidSpec(key, workload string, scale, streams, entries int) sim.Spec {
	return sampled(sim.Spec{Label: key, Workload: workload, Scale: scale, Engine: sim.EngineRGID, Streams: streams, Entries: entries})
}

func riSpec(key, workload string, scale, sets, ways int) sim.Spec {
	return sampled(sim.Spec{Label: key, Workload: workload, Scale: scale, Engine: sim.EngineRI, Sets: sets, Ways: ways})
}

func dirSpec(key, workload string, scale int, engine sim.Engine, sets, ways int) sim.Spec {
	return sampled(sim.Spec{Label: key, Workload: workload, Scale: scale, Engine: engine, Sets: sets, Ways: ways})
}

// pct formats a fraction as a percentage.
func pct(f float64) string { return fmt.Sprintf("%+.1f%%", 100*f) }

// improvement returns base/with - 1 in cycles (positive = faster).
func improvement(base, with *stats.Stats) float64 { return stats.Speedup(base, with) }

// header renders a fixed-width table header, sizing columns to fit the
// longest label.
func header(sb *strings.Builder, first string, cols []string) {
	fmt.Fprintf(sb, "%-18s", first)
	for _, c := range cols {
		fmt.Fprintf(sb, "%*s", colWidth(cols), c)
	}
	sb.WriteByte('\n')
}

// colWidth returns the column width used by header and by value rows that
// align with it.
func colWidth(cols []string) int {
	w := 12
	for _, c := range cols {
		if len(c)+2 > w {
			w = len(c) + 2
		}
	}
	return w
}
