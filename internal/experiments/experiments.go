// Package experiments regenerates every table and figure of the paper's
// evaluation from the simulator:
//
//	Table 1  — microbenchmark speedups (multi-stream vs Register
//	           Integration at matched capacities)
//	Table 2  — additional storage (analytical, internal/storage)
//	Table 3  — baseline configuration echo
//	Table 4  — synthesis complexity (analytical, internal/synth)
//	Figure 3 — RI reuse-table replacement-frequency heatmap
//	Figure 4 — reconvergence-type breakdown
//	Figure 10 — IPC improvement across stream/WPB configurations
//	Figure 11 — reconvergence stream-distance breakdown
//	Figure 12 — RGID vs RI across matched configurations on GAP
//
// Each experiment returns a structured result plus a Render method that
// prints rows in the shape of the paper's artifact (CSV-like tables and
// ASCII heatmaps). Simulations within an experiment run in parallel.
package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"sync"

	"mssr/internal/core"
	"mssr/internal/isa"
	"mssr/internal/stats"
)

// job is one simulation to run.
type job struct {
	key  string
	prog *isa.Program
	cfg  core.Config
}

// runAll executes jobs in parallel and returns stats keyed by job key.
func runAll(jobs []job) (map[string]*stats.Stats, error) {
	results := make(map[string]*stats.Stats, len(jobs))
	var mu sync.Mutex
	var firstErr error
	sem := make(chan struct{}, runtime.NumCPU())
	var wg sync.WaitGroup
	for _, j := range jobs {
		j := j
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			c := core.New(j.prog, j.cfg)
			err := c.Run()
			mu.Lock()
			defer mu.Unlock()
			if err != nil && firstErr == nil {
				firstErr = fmt.Errorf("%s: %w", j.key, err)
				return
			}
			results[j.key] = c.Stats
		}()
	}
	wg.Wait()
	return results, firstErr
}

// msConfig builds the multi-stream configuration used by the experiments.
func msConfig(streams, logEntries int) core.Config {
	return core.MultiStreamConfig(streams, logEntries)
}

// pct formats a fraction as a percentage.
func pct(f float64) string { return fmt.Sprintf("%+.1f%%", 100*f) }

// improvement returns base/with - 1 in cycles (positive = faster).
func improvement(base, with *stats.Stats) float64 { return stats.Speedup(base, with) }

// header renders a fixed-width table header, sizing columns to fit the
// longest label.
func header(sb *strings.Builder, first string, cols []string) {
	fmt.Fprintf(sb, "%-18s", first)
	for _, c := range cols {
		fmt.Fprintf(sb, "%*s", colWidth(cols), c)
	}
	sb.WriteByte('\n')
}

// colWidth returns the column width used by header and by value rows that
// align with it.
func colWidth(cols []string) int {
	w := 12
	for _, c := range cols {
		if len(c)+2 > w {
			w = len(c) + 2
		}
	}
	return w
}
