package experiments

import (
	"strings"
	"testing"

	"mssr/internal/core"
	"mssr/internal/sim"
	"mssr/internal/workloads"
)

// The experiment tests run at tiny scale (0): they validate structure and
// rendering, not effect sizes — the effect-size shape checks live in the
// repository benchmarks and EXPERIMENTS.md.

func TestTable1Shape(t *testing.T) {
	r, err := Table1(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Variants) != 2 || len(r.Configs) != 7 {
		t.Fatalf("unexpected dimensions: %v x %v", r.Variants, r.Configs)
	}
	for _, v := range r.Variants {
		if r.Speedup[v]["baseline"] != 0 {
			t.Errorf("%s baseline speedup = %v, want 0", v, r.Speedup[v]["baseline"])
		}
		for _, c := range r.Configs {
			s := r.Speedup[v][c]
			if s < -0.9 || s > 10 {
				t.Errorf("%s/%s speedup %v implausible", v, c, s)
			}
		}
	}
	out := r.Render()
	for _, want := range []string{"Table 1", "Multi-Stream Squash Reuse", "Register Integration", "4 streams / ways"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestStaticTables(t *testing.T) {
	if !strings.Contains(Table2(), "3.53 KB") {
		t.Error("Table2 missing the paper's total")
	}
	t3 := Table3()
	for _, want := range []string{"256 entries", "TAGE", "64KB 4-way"} {
		if !strings.Contains(t3, want) {
			t.Errorf("Table3 missing %q:\n%s", want, t3)
		}
	}
	if !strings.Contains(Table4(), "Reuse Test") {
		t.Error("Table4 incomplete")
	}
}

func TestFigure3Shape(t *testing.T) {
	r, err := Figure3(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range r.Variants {
		for _, w := range r.Ways {
			if len(r.Replacements[v][w]) != r.Sets {
				t.Fatalf("%s/%d-way: %d sets, want %d", v, w, len(r.Replacements[v][w]), r.Sets)
			}
		}
		// Higher associativity must not replace more than direct mapped.
		if r.Total(v, 4) > r.Total(v, 1) {
			t.Errorf("%s: 4-way replaces more (%d) than 1-way (%d)", v, r.Total(v, 4), r.Total(v, 1))
		}
	}
	out := r.Render()
	if !strings.Contains(out, "1-way |") || !strings.Contains(out, "4-way |") {
		t.Error("heatmap rows missing")
	}
}

func TestFigure4Shape(t *testing.T) {
	r, err := Figure4(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Workloads) != 19 {
		t.Fatalf("workload count = %d", len(r.Workloads))
	}
	for _, name := range r.Workloads {
		f := r.Fraction[name]
		sum := f[0] + f[1] + f[2]
		if sum != 0 && (sum < 0.999 || sum > 1.001) {
			t.Errorf("%s fractions sum to %v", name, sum)
		}
		if ms := r.MultiStreamFraction(name); ms < 0 || ms > 1 {
			t.Errorf("%s multi-stream fraction %v", name, ms)
		}
	}
	if !strings.Contains(r.Render(), "hw-induced") {
		t.Error("render incomplete")
	}
}

func TestFigure10Shape(t *testing.T) {
	r, err := Figure10(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Workloads) != 17 {
		t.Fatalf("Figure 10 covers SPEC+GAP (17), got %d", len(r.Workloads))
	}
	if len(r.Configs) != 5 {
		t.Fatalf("configs = %v", r.Configs)
	}
	for _, name := range r.Workloads {
		for _, c := range r.Configs {
			v := r.Improvement[name][c]
			if v < -0.9 || v > 10 {
				t.Errorf("%s/%s improvement %v implausible", name, c, v)
			}
		}
	}
	_ = r.Average("4x64", "gap")
	out := r.Render()
	if !strings.Contains(out, "avg gap") || !strings.Contains(out, "4x1024") {
		t.Error("render incomplete")
	}
}

func TestFigure11Shape(t *testing.T) {
	r, err := Figure11(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range r.Workloads {
		var sum float64
		for _, f := range r.Fraction[name] {
			if f < 0 || f > 1 {
				t.Errorf("%s fraction %v out of range", name, f)
			}
			sum += f
		}
		if sum != 0 && (sum < 0.999 || sum > 1.001) {
			t.Errorf("%s distances sum to %v", name, sum)
		}
		if c1, c3 := r.Cumulative(name, 1), r.Cumulative(name, 3); c3 < c1 {
			t.Errorf("%s cumulative not monotonic", name)
		}
	}
	if !strings.Contains(r.Render(), "d=1") {
		t.Error("render incomplete")
	}
}

func TestFigure12Shape(t *testing.T) {
	r, err := Figure12(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Workloads) != 6 {
		t.Fatalf("GAP workloads = %v", r.Workloads)
	}
	if len(r.Configs) != 12 {
		t.Fatalf("configs = %v", r.Configs)
	}
	out := r.Render()
	for _, want := range []string{"rgid-4x128", "ri-128s4w", "bfs"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

// TestRunSpecsAggregatesErrors pins the behavior the old runAll got
// wrong: when multiple jobs of a sweep fail, every failure must be
// reported (not just the first), and the results of jobs that succeeded
// — before or after the failures — must still be collected.
func TestRunSpecsAggregatesErrors(t *testing.T) {
	p, err := workloads.Build("nested-mispred", 0)
	if err != nil {
		t.Fatal(err)
	}
	limit := func(c *core.Config) { c.MaxCycles = 64 }
	specs := []sim.Spec{
		{Label: "ok-first", Program: p},
		{Label: "fail-a", Program: p, Tune: limit, TuneKey: "limit"},
		{Label: "ok-middle", Program: p, Engine: sim.EngineRGID, Streams: 2, Entries: 32},
		{Label: "fail-b", Program: p, Tune: limit, TuneKey: "limit"},
		{Label: "ok-last", Program: p, Engine: sim.EngineRI, Sets: 64, Ways: 2},
	}
	res, err := runSpecs(specs)
	if err == nil {
		t.Fatal("sweep with two failing jobs returned nil error")
	}
	for _, key := range []string{"fail-a", "fail-b"} {
		if !strings.Contains(err.Error(), key) {
			t.Errorf("aggregate error does not name %q: %v", key, err)
		}
	}
	for _, key := range []string{"ok-first", "ok-middle", "ok-last"} {
		st, ok := res[key]
		if !ok || st == nil || st.Retired == 0 {
			t.Errorf("successful job %q discarded from results", key)
		}
	}
	if _, ok := res["fail-a"]; ok {
		t.Error("failed job leaked a stats entry into the result map")
	}
}

// TestPhasesShape runs the phase-behaviour experiment at tiny scale with
// a small sampling interval (the scale-0 runs are short) and checks the
// telemetry stream and table structure.
func TestPhasesShape(t *testing.T) {
	SetSampling(64)
	defer SetSampling(0)
	r, err := Phases(0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Interval != 64 {
		t.Fatalf("interval = %d, want the SetSampling value", r.Interval)
	}
	if len(r.Workloads) != 11 {
		t.Fatalf("phases covers SPEC-like workloads (11), got %d", len(r.Workloads))
	}
	for i := range r.Workloads {
		w := &r.Workloads[i]
		if len(w.Intervals) == 0 {
			t.Errorf("%s: no intervals sampled", w.Name)
			continue
		}
		for q := 0; q < 4; q++ {
			ipc, reuse := w.Quarter(q)
			if ipc < 0 || reuse < 0 || reuse > 1 {
				t.Errorf("%s q%d: implausible rates ipc=%v reuse=%v", w.Name, q+1, ipc, reuse)
			}
		}
		if ramp := w.ReuseRamp(); ramp < -1 || ramp > 1 {
			t.Errorf("%s: reuse ramp %v out of range", w.Name, ramp)
		}
	}
	out := r.Render()
	for _, want := range []string{"Phase behaviour", "reuse%", "ramp", "sjeng", "leela"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

// TestSetSamplingAttaches pins that the sampling knob reaches the specs
// the experiment helpers build — and therefore their canonical keys, so
// sampled sweeps cannot collide with unsampled daemon cache entries.
func TestSetSamplingAttaches(t *testing.T) {
	if s := rgidSpec("k", "bfs", 0, 4, 64); s.SampleInterval != 0 {
		t.Fatalf("sampling attached while knob off: %d", s.SampleInterval)
	}
	SetSampling(128)
	defer SetSampling(0)
	for _, s := range []sim.Spec{
		baseSpec("k", "bfs", 0),
		rgidSpec("k", "bfs", 0, 4, 64),
		riSpec("k", "bfs", 0, 64, 4),
		dirSpec("k", "bfs", 0, sim.EngineDIRValue, 64, 4),
	} {
		if s.SampleInterval != 128 {
			t.Errorf("%s: SampleInterval = %d, want 128", s.Label, s.SampleInterval)
		}
		if !strings.Contains(s.CanonicalKey(), "+iv128") {
			t.Errorf("%s: canonical key %q lacks sampling params", s.Label, s.CanonicalKey())
		}
	}
}

// TestSetRunner checks msrbench's runner swap takes effect for
// subsequent sweeps.
func TestSetRunner(t *testing.T) {
	old := currentRunner()
	defer SetRunner(old)
	r := &sim.Runner{Jobs: 1}
	SetRunner(r)
	if currentRunner() != r {
		t.Fatal("SetRunner did not swap the shared runner")
	}
}

func TestCSVFormats(t *testing.T) {
	r, err := Table1(0)
	if err != nil {
		t.Fatal(err)
	}
	csv := r.CSV()
	if !strings.HasPrefix(csv, "CFG,BM,CYCLES,diff\n") {
		t.Errorf("CSV header missing:\n%s", csv[:60])
	}
	for _, want := range []string{"RGID_4,nested-mispred,", "RI_2W,linear-mispred,", "BASELINE,"} {
		if !strings.Contains(csv, want) {
			t.Errorf("CSV missing %q", want)
		}
	}
	f, err := Figure10(0)
	if err != nil {
		t.Fatal(err)
	}
	fcsv := f.CSV()
	for _, want := range []string{"RCVG_4_64,bfs,", "BASE,astar,"} {
		if !strings.Contains(fcsv, want) {
			t.Errorf("Figure10 CSV missing %q", want)
		}
	}
	// Every line has exactly four fields.
	for i, line := range strings.Split(strings.TrimSpace(fcsv), "\n") {
		if got := strings.Count(line, ","); got != 3 {
			t.Fatalf("line %d has %d commas: %q", i, got, line)
		}
	}
}
