package experiments

import (
	"fmt"
	"strings"

	"mssr/internal/sim"
)

// BaselinesResult compares all four squash-reuse mechanisms discussed by
// the paper — no reuse, Dynamic Instruction Reuse (both schemes),
// Register Integration and the RGID multi-stream mechanism — at matched
// capacities (256 reuse entries), across the microbenchmarks and a
// representative workload subset. This extends the paper's §3.7
// qualitative comparison with measured numbers.
type BaselinesResult struct {
	Workloads []string
	Engines   []string
	// Improvement[workload][engine] over the no-reuse baseline.
	Improvement map[string]map[string]float64
	// ReuseHits[workload][engine].
	ReuseHits map[string]map[string]uint64
}

// baselineWorkloads picks the comparison set.
func baselineWorkloads() []string {
	return []string{"nested-mispred", "linear-mispred", "astar", "gobmk", "bfs", "sssp"}
}

// Baselines runs the engine comparison.
func Baselines(scale int) (*BaselinesResult, error) {
	engines := []struct {
		name string
		mk   func(key, workload string) sim.Spec
	}{
		{"dir-value", func(key, workload string) sim.Spec { return dirSpec(key, workload, scale, sim.EngineDIRValue, 64, 4) }},
		{"dir-name", func(key, workload string) sim.Spec { return dirSpec(key, workload, scale, sim.EngineDIRName, 64, 4) }},
		{"ri-64s4w", func(key, workload string) sim.Spec { return riSpec(key, workload, scale, 64, 4) }},
		{"rgid-4x64", func(key, workload string) sim.Spec { return rgidSpec(key, workload, scale, 4, 64) }},
	}
	r := &BaselinesResult{
		Workloads:   baselineWorkloads(),
		Improvement: map[string]map[string]float64{},
		ReuseHits:   map[string]map[string]uint64{},
	}
	for _, e := range engines {
		r.Engines = append(r.Engines, e.name)
	}
	var specs []sim.Spec
	for _, name := range r.Workloads {
		specs = append(specs, baseSpec(name+"/baseline", name, scale))
		for _, e := range engines {
			specs = append(specs, e.mk(name+"/"+e.name, name))
		}
	}
	res, err := runSpecs(specs)
	if err != nil {
		return nil, err
	}
	for _, name := range r.Workloads {
		base := res[name+"/baseline"]
		r.Improvement[name] = map[string]float64{}
		r.ReuseHits[name] = map[string]uint64{}
		for _, e := range r.Engines {
			st := res[name+"/"+e]
			r.Improvement[name][e] = improvement(base, st)
			r.ReuseHits[name][e] = st.ReuseHits
		}
	}
	return r, nil
}

// Render prints the engine comparison grid.
func (r *BaselinesResult) Render() string {
	var sb strings.Builder
	sb.WriteString("Baselines: squash-reuse mechanisms at matched capacity (256 entries)\n")
	header(&sb, "benchmark", r.Engines)
	w := colWidth(r.Engines)
	for _, name := range r.Workloads {
		fmt.Fprintf(&sb, "%-18s", name)
		for _, e := range r.Engines {
			fmt.Fprintf(&sb, "%*s", w, pct(r.Improvement[name][e]))
		}
		sb.WriteByte('\n')
	}
	sb.WriteString("reuse hits:\n")
	for _, name := range r.Workloads {
		fmt.Fprintf(&sb, "%-18s", name)
		for _, e := range r.Engines {
			fmt.Fprintf(&sb, "%*d", w, r.ReuseHits[name][e])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
