package experiments

import (
	"fmt"
	"strings"

	"mssr/internal/core"
	"mssr/internal/sim"
	"mssr/internal/stats"
	"mssr/internal/storage"
	"mssr/internal/synth"
)

// Table1Result holds the microbenchmark speedup comparison (§2.2.4): the
// Listing 1 variations on Multi-Stream Squash Reuse at 1/2/4 streams and
// Register Integration at 1/2/4 ways, relative to a no-reuse baseline.
type Table1Result struct {
	Variants []string
	Configs  []string
	// Speedup[variant][config] is the fractional runtime improvement.
	Speedup map[string]map[string]float64
	// Stats keeps the full counters for every run (keyed
	// "variant/config"), so downstream analyses need not rerun.
	Stats map[string]*stats.Stats
}

// Table1 runs the Table 1 experiment at the given workload scale.
func Table1(scale int) (*Table1Result, error) {
	r := &Table1Result{
		Variants: []string{"nested-mispred", "linear-mispred"},
		Configs: []string{
			"baseline",
			"rgid-1", "rgid-2", "rgid-4",
			"ri-1w", "ri-2w", "ri-4w",
		},
		Speedup: map[string]map[string]float64{},
	}
	var specs []sim.Spec
	for _, name := range r.Variants {
		specs = append(specs,
			baseSpec(name+"/baseline", name, scale),
			rgidSpec(name+"/rgid-1", name, scale, 1, 64),
			rgidSpec(name+"/rgid-2", name, scale, 2, 64),
			rgidSpec(name+"/rgid-4", name, scale, 4, 64),
			riSpec(name+"/ri-1w", name, scale, 64, 1),
			riSpec(name+"/ri-2w", name, scale, 64, 2),
			riSpec(name+"/ri-4w", name, scale, 64, 4),
		)
	}
	res, err := runSpecs(specs)
	if err != nil {
		return nil, err
	}
	r.Stats = res
	for _, v := range r.Variants {
		base := res[v+"/baseline"]
		r.Speedup[v] = map[string]float64{}
		for _, cfg := range r.Configs {
			r.Speedup[v][cfg] = improvement(base, res[v+"/"+cfg])
		}
	}
	return r, nil
}

// Render prints the Table 1 rows in the paper's layout.
func (r *Table1Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Table 1: microbenchmark runtime improvement over no-reuse baseline\n")
	header(&sb, "config", r.Variants)
	rows := []struct{ label, rgid, ri string }{
		{"1 stream / way", "rgid-1", "ri-1w"},
		{"2 streams / ways", "rgid-2", "ri-2w"},
		{"4 streams / ways", "rgid-4", "ri-4w"},
	}
	for _, kind := range []struct{ name, sel string }{{"Multi-Stream Squash Reuse", "rgid"}, {"Register Integration", "ri"}} {
		fmt.Fprintf(&sb, "%s\n", kind.name)
		for _, row := range rows {
			cfg := row.rgid
			if kind.sel == "ri" {
				cfg = row.ri
			}
			fmt.Fprintf(&sb, "  %-16s", row.label)
			for _, v := range r.Variants {
				fmt.Fprintf(&sb, "%*s", colWidth(r.Variants), pct(r.Speedup[v][cfg]))
			}
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

// Table2 renders the storage model at the paper's configuration plus a
// small sweep.
func Table2() string {
	var sb strings.Builder
	sb.WriteString(storage.Table(storage.Default()))
	sb.WriteString("\nSweep (total KB):\n")
	for _, n := range []int{1, 2, 4, 8} {
		for _, p := range []int{16, 64, 128} {
			params := storage.Default()
			params.Streams = n
			params.LogEntries = p
			params.WPBEntries = max(1, p/4)
			b := storage.Compute(params)
			fmt.Fprintf(&sb, "  N=%d P=%-4d -> %.2f KB\n", n, p, storage.KB(b.Total()))
		}
	}
	return sb.String()
}

// Table3 echoes the simulated baseline configuration (the paper's
// Table 3).
func Table3() string {
	cfg := core.DefaultConfig()
	var sb strings.Builder
	sb.WriteString("Table 3: baseline configuration\n")
	rows := [][2]string{
		{"Fetch block size", "32B (8 instructions)"},
		{"Nextline predictor", "bimodal base"},
		{"Main branch predictor", "TAGE (6 tagged tables, 4..128-bit histories)"},
		{"Frontend pipeline", fmt.Sprintf("%d stages", cfg.FrontendDelay+1)},
		{"Decode/Rename width", fmt.Sprintf("%d", cfg.RenameWidth)},
		{"Reorder buffer", fmt.Sprintf("%d entries", cfg.ROBSize)},
		{"Reservation stations", fmt.Sprintf("%d-entry %dxALU + %dxBRU, %d-entry %dxLSU", cfg.IQSize, cfg.ALUs, cfg.BRUs, cfg.MemIQSize, cfg.LSUs)},
		{"Load/Store queues", fmt.Sprintf("%d-entry LQ, %d-entry SQ", cfg.LoadQueue, cfg.StoreQueue)},
		{"Physical registers", fmt.Sprintf("%d", cfg.PhysRegs)},
		{"DCache", fmt.Sprintf("%dKB %d-way, %d-cycle", cfg.Mem.L1Size>>10, cfg.Mem.L1Ways, cfg.Mem.L1Latency)},
		{"L2", fmt.Sprintf("%dMB %d-way, %d-cycle", cfg.Mem.L2Size>>20, cfg.Mem.L2Ways, cfg.Mem.L2Latency)},
		{"DRAM", fmt.Sprintf("%d-cycle", cfg.Mem.DRAMLat)},
	}
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %-24s %s\n", r[0], r[1])
	}
	return sb.String()
}

// Table4 renders the synthesis-complexity model.
func Table4() string { return synth.Table() }
