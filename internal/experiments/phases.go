package experiments

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"mssr/internal/obs"
	"mssr/internal/sim"
	"mssr/internal/workloads"
)

// DefaultPhaseInterval is the sampling interval the phases experiment
// uses when msrbench's -stats-interval knob is unset.
const DefaultPhaseInterval = 4096

// The sampling knob attaches interval telemetry to every spec the
// experiment helpers build, so any sweep — table1, fig10, phases — can
// emit an interval stream through msrbench's -stats-out observer.
// Sampling parameters are part of a spec's canonical key, so sampled
// and unsampled sweeps address distinct daemon cache entries.
var (
	samplingMu       sync.Mutex
	samplingInterval uint64
)

// SetSampling attaches interval telemetry (every `interval` cycles) to
// all specs subsequent experiments build; 0 turns sampling back off.
func SetSampling(interval uint64) {
	samplingMu.Lock()
	defer samplingMu.Unlock()
	samplingInterval = interval
}

func currentSampling() uint64 {
	samplingMu.Lock()
	defer samplingMu.Unlock()
	return samplingInterval
}

// sampled applies the package sampling knob to a freshly built spec.
func sampled(s sim.Spec) sim.Spec {
	s.SampleInterval = currentSampling()
	return s
}

// PhaseWorkload is one workload's interval-telemetry stream.
type PhaseWorkload struct {
	Name      string
	Suite     string
	Intervals []obs.Interval
	// Dropped counts early intervals the sampler ring overwrote; when
	// non-zero the stream starts mid-run.
	Dropped int
}

// quarterRates aggregates one contiguous run quarter: IPC and reuse rate
// computed over the quarter's summed deltas (not averaged per-interval
// rates, which would weight short trailing intervals equally).
func quarterRates(ivs []obs.Interval) (ipc, reuse float64) {
	var retired, cycles, hits uint64
	for i := range ivs {
		retired += ivs[i].Retired
		cycles += ivs[i].Cycles()
		hits += ivs[i].ReuseHits
	}
	if cycles > 0 {
		ipc = float64(retired) / float64(cycles)
	}
	if retired > 0 {
		reuse = float64(hits) / float64(retired)
	}
	return ipc, reuse
}

// Quarter returns the aggregate IPC and reuse rate of run quarter q
// (0..3), splitting the retained intervals into four contiguous chunks.
func (w *PhaseWorkload) Quarter(q int) (ipc, reuse float64) {
	n := len(w.Intervals)
	return quarterRates(w.Intervals[q*n/4 : (q+1)*n/4])
}

// ReuseRamp is the reuse-rate change from the first to the last run
// quarter — positive when reuse coverage ramps up as the reuse
// structures warm.
func (w *PhaseWorkload) ReuseRamp() float64 {
	_, first := w.Quarter(0)
	_, last := w.Quarter(3)
	return last - first
}

// PhasesResult is the phase-behaviour experiment: per-interval telemetry
// for every SPEC-like workload under the paper's rgid-4x64
// configuration, exposing the warmup and reuse-rate ramp that the
// whole-run aggregates of Table 1 and Figure 10 hide.
type PhasesResult struct {
	Scale int
	// Interval is the sampling period in cycles.
	Interval  uint64
	Workloads []PhaseWorkload
}

// Phases runs the spec2006+spec2017 workloads at rgid-4x64 with interval
// sampling attached and collects each run's telemetry stream. The
// sampling period is msrbench's -stats-interval when set (SetSampling),
// DefaultPhaseInterval otherwise.
func Phases(scale int) (*PhasesResult, error) {
	every := currentSampling()
	if every == 0 {
		every = DefaultPhaseInterval
	}
	var specs []sim.Spec
	for _, suite := range []string{"spec2006", "spec2017"} {
		for _, w := range workloads.Suite(suite) {
			s := rgidSpec(w.Name, w.Name, scale, 4, 64)
			s.SampleInterval = every
			specs = append(specs, s)
		}
	}
	// runSpecs would discard the interval streams (it keeps only stats),
	// so run through the backend directly.
	res, err := currentRunner().Run(context.Background(), specs)
	if err != nil {
		return nil, err
	}
	r := &PhasesResult{Scale: scale, Interval: every}
	for i := range res {
		if res[i].Err != nil {
			return nil, fmt.Errorf("phases: %s: %w", res[i].Key, res[i].Err)
		}
		wl, err := workloads.ByName(res[i].Key)
		if err != nil {
			return nil, err
		}
		r.Workloads = append(r.Workloads, PhaseWorkload{
			Name:      wl.Name,
			Suite:     wl.Suite,
			Intervals: res[i].Intervals,
			Dropped:   res[i].IntervalsDropped,
		})
	}
	return r, nil
}

// Render prints the phase-behaviour table: per-quarter IPC and reuse
// rate for every workload, plus the first-to-last-quarter reuse ramp.
func (r *PhasesResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Phase behaviour (scale %d, rgid-4x64, %d-cycle intervals; per-quarter aggregates)\n",
		r.Scale, r.Interval)
	fmt.Fprintf(&sb, "%-12s%-10s%5s  %s  %s%8s\n",
		"workload", "suite", "ivs",
		"ipc     q1    q2    q3    q4",
		"reuse%   q1    q2    q3    q4", "ramp")
	for i := range r.Workloads {
		w := &r.Workloads[i]
		fmt.Fprintf(&sb, "%-12s%-10s%5d  ", w.Name, w.Suite, len(w.Intervals))
		for q := 0; q < 4; q++ {
			ipc, _ := w.Quarter(q)
			fmt.Fprintf(&sb, "%6.2f", ipc)
		}
		sb.WriteString("    ")
		for q := 0; q < 4; q++ {
			_, reuse := w.Quarter(q)
			fmt.Fprintf(&sb, "%6.1f", 100*reuse)
		}
		fmt.Fprintf(&sb, "%+8.1f", 100*w.ReuseRamp())
		if w.Dropped > 0 {
			fmt.Fprintf(&sb, "  (%d early intervals dropped)", w.Dropped)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
