package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"time"

	"mssr/internal/core"
	"mssr/internal/sim"
	"mssr/internal/workloads"
)

// baselineSpecMIPS is the pre-refactor simulated-MIPS of the SPEC-like
// sweep (scale 1, rgid-4x64, Jobs=1) measured on the reference dev host
// at commit fa6b1ee, before the allocation-free cycle-loop refactor.
// BENCH_PR3.json records it next to the current numbers so the speedup
// the refactor bought stays visible; on other hosts only the ratio is
// meaningful, not the absolute MIPS.
const baselineSpecMIPS = 0.485

// pr5SpecMIPS is the SPEC-like pooled aggregate recorded in
// BENCH_PR5.json on the reference host, before the batched SoA sweep
// work. The batched grid reports its aggregate as a multiple of this
// figure; as with baselineSpecMIPS, only the ratio is meaningful off
// the reference host.
const pr5SpecMIPS = 1.0514

// gridPasses is how many times each grid mode (batched, sequential) is
// timed; the fastest pass of each is recorded. See perfGrid.
const gridPasses = 2

// PerfWorkload is one workload's throughput measurement.
type PerfWorkload struct {
	Name  string `json:"name"`
	Suite string `json:"suite"`
	// MIPS is simulated millions of instructions retired per host
	// wall-clock second, measured on a warm pooled core.
	MIPS float64 `json:"mips"`
	// FreshMIPS is the same measurement with pooling disabled — every
	// run pays full core construction.
	FreshMIPS float64 `json:"mips_fresh"`
	Cycles    uint64  `json:"cycles"`
	Retired   uint64  `json:"retired"`
}

// PerfSuite aggregates a suite: total retired over total wall time.
type PerfSuite struct {
	MIPS      float64 `json:"mips_pooled"`
	FreshMIPS float64 `json:"mips_fresh"`
	// PoolSpeedup is MIPS/FreshMIPS — the win from reusing cores.
	PoolSpeedup float64 `json:"pool_speedup"`
}

// PerfGridVariant is one engine configuration's aggregate across the
// grid workloads: total retired instructions over total wall time, in
// both execution modes. Batched wall is the variant's own in-pipeline
// time (the shared stream stepping and the once-per-group reference
// emulation are not billed to any one variant), so its MIPS reads
// slightly above the sequential figure, which pays the reference
// emulation on every run.
type PerfGridVariant struct {
	Config         string  `json:"config"`
	MIPS           float64 `json:"mips_batched"`
	SequentialMIPS float64 `json:"mips_sequential"`
	Retired        uint64  `json:"retired"`
}

// PerfGrid is the batched-sweep benchmark: the twelve standard engine
// configurations over every SPEC-like workload, run once as lockstep
// batch groups (one group per workload, all twelve variants stepping
// the shared instruction stream) and once sequentially, on the same
// warm core pool. Both aggregates are end-to-end sweep throughput —
// total retired instructions over the wall-clock of the whole pass —
// so program residency and the once-per-group architectural
// verification all count. Identical records the correctness gate:
// every run's stats were byte-identical across the two modes (a
// divergence fails the experiment before this document is written).
type PerfGrid struct {
	Workloads int `json:"workloads"`
	Configs   int `json:"configs"`
	Runs      int `json:"runs"`
	// Passes is how many timed passes each mode ran; the MIPS figures
	// are from each mode's fastest pass.
	Passes         int               `json:"passes_per_mode"`
	MIPS           float64           `json:"mips_batched"`
	SequentialMIPS float64           `json:"mips_sequential"`
	BatchSpeedup   float64           `json:"batch_speedup"`
	Identical      bool              `json:"identical"`
	PR5SpecMIPS    float64           `json:"pr5_spec_mips"`
	SpeedupVsPR5   float64           `json:"speedup_vs_pr5"`
	Variants       []PerfGridVariant `json:"variants"`
}

// PerfResult is the simulator-throughput benchmark behind the BENCH_PR*
// documents (currently BENCH_PR6.json).
type PerfResult struct {
	Scale  int    `json:"scale"`
	Engine string `json:"engine"`
	Host   string `json:"host"`
	// Spec covers the spec2006+spec2017 workloads, Gap the GAP-like ones.
	Spec PerfSuite `json:"spec"`
	Gap  PerfSuite `json:"gap"`
	// BaselineSpecMIPS is the pre-refactor reference-host measurement;
	// SpeedupVsBaseline = Spec.MIPS / BaselineSpecMIPS (comparable only
	// on the reference host).
	BaselineSpecMIPS  float64 `json:"baseline_spec_mips"`
	SpeedupVsBaseline float64 `json:"speedup_vs_baseline"`
	// AllocsPerCycle is heap objects allocated per simulated cycle
	// during the steady-state (pooled, warm) pass — the allocation
	// discipline the refactor enforces; ~0 when the cycle loop is clean.
	AllocsPerCycle float64        `json:"allocs_per_cycle"`
	Workloads      []PerfWorkload `json:"workloads"`
	// Grid is the batched 12-config sweep measurement.
	Grid PerfGrid `json:"grid"`
}

// gridVariants are the twelve standard engine configurations — the same
// set internal/core's equivalence tests sweep — expressed as spec
// mutations. They differ in engine, geometry, load policy and tuning,
// which is exactly the per-variant freedom a lockstep batch group
// allows.
var gridVariants = []struct {
	name string
	set  func(*sim.Spec)
}{
	{"none", func(s *sim.Spec) {}},
	{"rgid-1x64", func(s *sim.Spec) { s.Engine, s.Streams, s.Entries = sim.EngineRGID, 1, 64 }},
	{"rgid-2x64", func(s *sim.Spec) { s.Engine, s.Streams, s.Entries = sim.EngineRGID, 2, 64 }},
	{"rgid-4x64", func(s *sim.Spec) { s.Engine, s.Streams, s.Entries = sim.EngineRGID, 4, 64 }},
	{"rgid-4x16", func(s *sim.Spec) { s.Engine, s.Streams, s.Entries = sim.EngineRGID, 4, 16 }},
	{"rgid-bloom", func(s *sim.Spec) {
		s.Engine, s.Streams, s.Entries = sim.EngineRGID, 4, 64
		s.Loads = sim.LoadBloom
	}},
	{"rgid-noload", func(s *sim.Spec) {
		s.Engine, s.Streams, s.Entries = sim.EngineRGID, 4, 64
		s.Loads = sim.LoadNoReuse
	}},
	{"rgid-tiny", func(s *sim.Spec) {
		s.Engine, s.Streams, s.Entries = sim.EngineRGID, 4, 64
		// 3-bit RGIDs force frequent overflow resets.
		s.Tune = func(c *core.Config) { c.RGIDBits = 3 }
		s.TuneKey = "rgid3"
	}},
	{"ri-64x4", func(s *sim.Spec) { s.Engine, s.Sets, s.Ways = sim.EngineRI, 64, 4 }},
	{"ri-64x1", func(s *sim.Spec) { s.Engine, s.Sets, s.Ways = sim.EngineRI, 64, 1 }},
	{"dir-value", func(s *sim.Spec) { s.Engine, s.Sets, s.Ways = sim.EngineDIRValue, 64, 4 }},
	{"dir-name", func(s *sim.Spec) { s.Engine, s.Sets, s.Ways = sim.EngineDIRName, 64, 4 }},
}

// perfSpecs builds the sweep: every SPEC-like and GAP-like workload
// under the paper's rgid-4x64 configuration. Programs are pre-built and
// shared so the measured passes time simulation, not program synthesis.
func perfSpecs(scale int) ([]sim.Spec, error) {
	var specs []sim.Spec
	for _, suite := range []string{"spec2006", "spec2017", "gap"} {
		for _, w := range workloads.Suite(suite) {
			s := rgidSpec(w.Name, w.Name, scale, 4, 64)
			p, err := s.BuildProgram()
			if err != nil {
				return nil, fmt.Errorf("build %s: %w", w.Name, err)
			}
			s.Workload, s.Scale, s.Program = "", 0, p
			specs = append(specs, s)
		}
	}
	return specs, nil
}

// perfGridSpecs builds the 12-config SPEC-like grid: every SPEC-like
// workload under every standard engine configuration, with one program
// built up front and shared by the workload's twelve specs — the
// pointer identity the batch grouping keys on. variantOf maps each
// spec back to its gridVariants index; nWork counts the workloads.
func perfGridSpecs(scale int) (specs []sim.Spec, variantOf []int, nWork int, err error) {
	for _, suite := range []string{"spec2006", "spec2017"} {
		for _, w := range workloads.Suite(suite) {
			p, err := workloads.Build(w.Name, scale)
			if err != nil {
				return nil, nil, 0, fmt.Errorf("build %s: %w", w.Name, err)
			}
			nWork++
			for vi, v := range gridVariants {
				s := sim.Spec{
					Label:   w.Name + "/" + v.name,
					Program: p,
					// The final architectural state of every member is
					// cross-checked against the emulator; under batching
					// the reference emulation runs once per group.
					VerifyArch: true,
				}
				v.set(&s)
				specs = append(specs, s)
				variantOf = append(variantOf, vi)
			}
		}
	}
	return specs, variantOf, nWork, nil
}

// perfGrid measures the batched grid: gridPasses batched passes (one
// lockstep group per workload) and gridPasses sequential passes over
// identical specs, both modes on the same warm pool, keeping each
// mode's fastest pass and byte-comparing every run's stats between the
// modes. The pool is pre-warmed with a tiny batched run so no measured
// pass pays core construction; the batched passes go first, which if
// anything biases against them (the sequential passes inherit cores
// whose memory pages the full-scale workloads already grew).
func perfGrid(ctx context.Context, scale int) (*PerfGrid, error) {
	specs, variantOf, nWork, err := perfGridSpecs(scale)
	if err != nil {
		return nil, err
	}

	runner := &sim.Runner{Jobs: 1, Batching: true}
	warm := make([]sim.Spec, len(gridVariants))
	for i, v := range gridVariants {
		s := sim.Spec{Label: "warm/" + v.name, Workload: "astar", Scale: 0}
		v.set(&s)
		warm[i] = s
	}
	if _, err := runner.Run(ctx, warm); err != nil {
		return nil, err
	}

	// Each mode is timed gridPasses times and the fastest pass is kept:
	// the runs are deterministic, so back-to-back passes do identical
	// work, and the minimum wall is the standard estimator that rejects
	// interference noise on a shared host (single passes swing ±10%).
	measure := func() ([]sim.Result, float64, error) {
		var best []sim.Result
		bestWall := -1.0
		for pass := 0; pass < gridPasses; pass++ {
			start := time.Now()
			res, err := runner.Run(ctx, specs)
			wall := time.Since(start).Seconds()
			if err != nil {
				return nil, 0, err
			}
			if bestWall < 0 || wall < bestWall {
				best, bestWall = res, wall
			}
		}
		return best, bestWall, nil
	}
	batched, batchedWall, err := measure()
	if err != nil {
		return nil, err
	}
	runner.Batching = false
	sequential, sequentialWall, err := measure()
	if err != nil {
		return nil, err
	}

	g := &PerfGrid{
		Workloads:   nWork,
		Configs:     len(gridVariants),
		Runs:        len(specs),
		Passes:      gridPasses,
		Identical:   true,
		PR5SpecMIPS: pr5SpecMIPS,
	}
	type agg struct {
		retired              uint64
		wall, sequentialWall float64
	}
	per := make([]agg, len(gridVariants))
	var totalRetired uint64
	for i := range specs {
		b, s := &batched[i], &sequential[i]
		bb, _ := json.Marshal(b.Stats)
		sb, _ := json.Marshal(s.Stats)
		if !bytes.Equal(bb, sb) {
			g.Identical = false
			return nil, fmt.Errorf("perf grid: %s: batched stats diverge from sequential:\nbatched:    %s\nsequential: %s",
				b.Key, bb, sb)
		}
		totalRetired += b.Stats.Retired
		a := &per[variantOf[i]]
		a.retired += b.Stats.Retired
		a.wall += b.Wall.Seconds()
		a.sequentialWall += s.Wall.Seconds()
	}
	mips := func(retired uint64, wall float64) float64 {
		if wall <= 0 {
			return 0
		}
		return float64(retired) / wall / 1e6
	}
	for vi, v := range gridVariants {
		g.Variants = append(g.Variants, PerfGridVariant{
			Config:         v.name,
			MIPS:           mips(per[vi].retired, per[vi].wall),
			SequentialMIPS: mips(per[vi].retired, per[vi].sequentialWall),
			Retired:        per[vi].retired,
		})
	}
	g.MIPS = mips(totalRetired, batchedWall)
	g.SequentialMIPS = mips(totalRetired, sequentialWall)
	if g.SequentialMIPS > 0 {
		g.BatchSpeedup = g.MIPS / g.SequentialMIPS
	}
	g.SpeedupVsPR5 = g.MIPS / pr5SpecMIPS
	return g, nil
}

// Perf measures simulator throughput. It always simulates in-process —
// host wall-clock is the quantity under test, so the shared backend
// (which may point at a remote daemon) is deliberately bypassed. Three
// serial passes: pooling disabled, a pool warm-up, and a measured
// steady-state pass on the warm pool with the allocation counter read
// around it. The batched 12-config grid (see PerfGrid) runs last.
func Perf(scale int) (*PerfResult, error) {
	ctx := context.Background()
	specs, err := perfSpecs(scale)
	if err != nil {
		return nil, err
	}

	fresh, err := (&sim.Runner{Jobs: 1, FreshCores: true}).Run(ctx, specs)
	if err != nil {
		return nil, err
	}
	pooled := &sim.Runner{Jobs: 1}
	if _, err := pooled.Run(ctx, specs); err != nil { // warm the pool
		return nil, err
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	warm, err := pooled.Run(ctx, specs)
	if err != nil {
		return nil, err
	}
	runtime.ReadMemStats(&after)

	r := &PerfResult{
		Scale:            scale,
		Engine:           "rgid-4x64",
		Host:             runtime.GOOS + "/" + runtime.GOARCH,
		BaselineSpecMIPS: baselineSpecMIPS,
	}
	var totalCycles uint64
	type agg struct {
		retired         uint64
		wall, freshWall float64
		freshRetired    uint64
	}
	sums := map[string]*agg{"spec": {}, "gap": {}}
	for i := range warm {
		w, f := warm[i], fresh[i]
		wl, err := workloads.ByName(w.Key)
		if err != nil {
			return nil, err
		}
		suite := wl.Suite
		bucket := "spec"
		if suite == "gap" {
			bucket = "gap"
		}
		r.Workloads = append(r.Workloads, PerfWorkload{
			Name:      w.Key,
			Suite:     suite,
			MIPS:      w.MIPS,
			FreshMIPS: f.MIPS,
			Cycles:    w.Stats.Cycles,
			Retired:   w.Stats.Retired,
		})
		totalCycles += w.Stats.Cycles
		s := sums[bucket]
		s.retired += w.Stats.Retired
		s.wall += w.Wall.Seconds()
		s.freshRetired += f.Stats.Retired
		s.freshWall += f.Wall.Seconds()
	}
	mips := func(retired uint64, wall float64) float64 {
		if wall <= 0 {
			return 0
		}
		return float64(retired) / wall / 1e6
	}
	suite := func(a *agg) PerfSuite {
		s := PerfSuite{MIPS: mips(a.retired, a.wall), FreshMIPS: mips(a.freshRetired, a.freshWall)}
		if s.FreshMIPS > 0 {
			s.PoolSpeedup = s.MIPS / s.FreshMIPS
		}
		return s
	}
	r.Spec = suite(sums["spec"])
	r.Gap = suite(sums["gap"])
	r.SpeedupVsBaseline = r.Spec.MIPS / baselineSpecMIPS
	if totalCycles > 0 {
		r.AllocsPerCycle = float64(after.Mallocs-before.Mallocs) / float64(totalCycles)
	}

	grid, err := perfGrid(ctx, scale)
	if err != nil {
		return nil, err
	}
	r.Grid = *grid
	return r, nil
}

// JSON renders the BENCH_PR6.json document.
func (r *PerfResult) JSON() string {
	b, _ := json.MarshalIndent(r, "", "  ")
	return string(b) + "\n"
}

// CheckFloor fails when the named workload's pooled throughput falls
// below minMIPS — the CI regression gate for the hot-path work (mcf is
// the memory-bound canary; its floor is the figure recorded in the
// previous PR's BENCH document).
func (r *PerfResult) CheckFloor(name string, minMIPS float64) error {
	for _, w := range r.Workloads {
		if w.Name != name {
			continue
		}
		if w.MIPS < minMIPS {
			return fmt.Errorf("perf regression: %s at %.3f MIPS, below the %.3f floor", name, w.MIPS, minMIPS)
		}
		return nil
	}
	return fmt.Errorf("perf floor: workload %q not in the result set", name)
}

// Render prints the throughput table.
func (r *PerfResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Simulator throughput (scale %d, %s, %s; MIPS = retired instrs / host wall second / 1e6)\n",
		r.Scale, r.Engine, r.Host)
	fmt.Fprintf(&sb, "%-18s%-12s%12s%12s%12s\n", "benchmark", "suite", "MIPS", "fresh", "cycles")
	for _, w := range r.Workloads {
		fmt.Fprintf(&sb, "%-18s%-12s%12.2f%12.2f%12d\n", w.Name, w.Suite, w.MIPS, w.FreshMIPS, w.Cycles)
	}
	fmt.Fprintf(&sb, "SPEC-like aggregate: %.3f MIPS pooled, %.3f fresh (pool speedup %.2fx)\n",
		r.Spec.MIPS, r.Spec.FreshMIPS, r.Spec.PoolSpeedup)
	fmt.Fprintf(&sb, "GAP-like aggregate:  %.3f MIPS pooled, %.3f fresh (pool speedup %.2fx)\n",
		r.Gap.MIPS, r.Gap.FreshMIPS, r.Gap.PoolSpeedup)
	fmt.Fprintf(&sb, "vs pre-refactor baseline (%.3f MIPS on the reference host): %.2fx\n",
		r.BaselineSpecMIPS, r.SpeedupVsBaseline)
	fmt.Fprintf(&sb, "steady-state allocations: %.4f objects per simulated cycle\n", r.AllocsPerCycle)
	g := &r.Grid
	if g.Runs > 0 {
		fmt.Fprintf(&sb, "\nBatched grid: %d configs x %d SPEC-like workloads (%d runs), lockstep groups vs sequential, best of %d passes per mode\n",
			g.Configs, g.Workloads, g.Runs, g.Passes)
		fmt.Fprintf(&sb, "%-18s%12s%12s%12s\n", "config", "batched", "sequential", "retired")
		for _, v := range g.Variants {
			fmt.Fprintf(&sb, "%-18s%12.2f%12.2f%12d\n", v.Config, v.MIPS, v.SequentialMIPS, v.Retired)
		}
		fmt.Fprintf(&sb, "grid aggregate: %.3f MIPS batched, %.3f sequential (batch speedup %.2fx); stats byte-identical: %v\n",
			g.MIPS, g.SequentialMIPS, g.BatchSpeedup, g.Identical)
		fmt.Fprintf(&sb, "vs BENCH_PR5 SPEC aggregate (%.4f MIPS on the reference host): %.2fx\n",
			g.PR5SpecMIPS, g.SpeedupVsPR5)
	}
	return sb.String()
}
