package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"strings"

	"mssr/internal/sim"
	"mssr/internal/workloads"
)

// baselineSpecMIPS is the pre-refactor simulated-MIPS of the SPEC-like
// sweep (scale 1, rgid-4x64, Jobs=1) measured on the reference dev host
// at commit fa6b1ee, before the allocation-free cycle-loop refactor.
// BENCH_PR3.json records it next to the current numbers so the speedup
// the refactor bought stays visible; on other hosts only the ratio is
// meaningful, not the absolute MIPS.
const baselineSpecMIPS = 0.485

// PerfWorkload is one workload's throughput measurement.
type PerfWorkload struct {
	Name  string `json:"name"`
	Suite string `json:"suite"`
	// MIPS is simulated millions of instructions retired per host
	// wall-clock second, measured on a warm pooled core.
	MIPS float64 `json:"mips"`
	// FreshMIPS is the same measurement with pooling disabled — every
	// run pays full core construction.
	FreshMIPS float64 `json:"mips_fresh"`
	Cycles    uint64  `json:"cycles"`
	Retired   uint64  `json:"retired"`
}

// PerfSuite aggregates a suite: total retired over total wall time.
type PerfSuite struct {
	MIPS      float64 `json:"mips_pooled"`
	FreshMIPS float64 `json:"mips_fresh"`
	// PoolSpeedup is MIPS/FreshMIPS — the win from reusing cores.
	PoolSpeedup float64 `json:"pool_speedup"`
}

// PerfResult is the simulator-throughput benchmark behind BENCH_PR3.json.
type PerfResult struct {
	Scale  int    `json:"scale"`
	Engine string `json:"engine"`
	Host   string `json:"host"`
	// Spec covers the spec2006+spec2017 workloads, Gap the GAP-like ones.
	Spec PerfSuite `json:"spec"`
	Gap  PerfSuite `json:"gap"`
	// BaselineSpecMIPS is the pre-refactor reference-host measurement;
	// SpeedupVsBaseline = Spec.MIPS / BaselineSpecMIPS (comparable only
	// on the reference host).
	BaselineSpecMIPS  float64 `json:"baseline_spec_mips"`
	SpeedupVsBaseline float64 `json:"speedup_vs_baseline"`
	// AllocsPerCycle is heap objects allocated per simulated cycle
	// during the steady-state (pooled, warm) pass — the allocation
	// discipline the refactor enforces; ~0 when the cycle loop is clean.
	AllocsPerCycle float64        `json:"allocs_per_cycle"`
	Workloads      []PerfWorkload `json:"workloads"`
}

// perfSpecs builds the sweep: every SPEC-like and GAP-like workload
// under the paper's rgid-4x64 configuration. Programs are pre-built and
// shared so the measured passes time simulation, not program synthesis.
func perfSpecs(scale int) ([]sim.Spec, error) {
	var specs []sim.Spec
	for _, suite := range []string{"spec2006", "spec2017", "gap"} {
		for _, w := range workloads.Suite(suite) {
			s := rgidSpec(w.Name, w.Name, scale, 4, 64)
			p, err := s.BuildProgram()
			if err != nil {
				return nil, fmt.Errorf("build %s: %w", w.Name, err)
			}
			s.Workload, s.Scale, s.Program = "", 0, p
			specs = append(specs, s)
		}
	}
	return specs, nil
}

// Perf measures simulator throughput. It always simulates in-process —
// host wall-clock is the quantity under test, so the shared backend
// (which may point at a remote daemon) is deliberately bypassed. Three
// serial passes: pooling disabled, a pool warm-up, and a measured
// steady-state pass on the warm pool with the allocation counter read
// around it.
func Perf(scale int) (*PerfResult, error) {
	ctx := context.Background()
	specs, err := perfSpecs(scale)
	if err != nil {
		return nil, err
	}

	fresh, err := (&sim.Runner{Jobs: 1, FreshCores: true}).Run(ctx, specs)
	if err != nil {
		return nil, err
	}
	pooled := &sim.Runner{Jobs: 1}
	if _, err := pooled.Run(ctx, specs); err != nil { // warm the pool
		return nil, err
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	warm, err := pooled.Run(ctx, specs)
	if err != nil {
		return nil, err
	}
	runtime.ReadMemStats(&after)

	r := &PerfResult{
		Scale:            scale,
		Engine:           "rgid-4x64",
		Host:             runtime.GOOS + "/" + runtime.GOARCH,
		BaselineSpecMIPS: baselineSpecMIPS,
	}
	var totalCycles uint64
	type agg struct {
		retired         uint64
		wall, freshWall float64
		freshRetired    uint64
	}
	sums := map[string]*agg{"spec": {}, "gap": {}}
	for i := range warm {
		w, f := warm[i], fresh[i]
		wl, err := workloads.ByName(w.Key)
		if err != nil {
			return nil, err
		}
		suite := wl.Suite
		bucket := "spec"
		if suite == "gap" {
			bucket = "gap"
		}
		r.Workloads = append(r.Workloads, PerfWorkload{
			Name:      w.Key,
			Suite:     suite,
			MIPS:      w.MIPS,
			FreshMIPS: f.MIPS,
			Cycles:    w.Stats.Cycles,
			Retired:   w.Stats.Retired,
		})
		totalCycles += w.Stats.Cycles
		s := sums[bucket]
		s.retired += w.Stats.Retired
		s.wall += w.Wall.Seconds()
		s.freshRetired += f.Stats.Retired
		s.freshWall += f.Wall.Seconds()
	}
	mips := func(retired uint64, wall float64) float64 {
		if wall <= 0 {
			return 0
		}
		return float64(retired) / wall / 1e6
	}
	suite := func(a *agg) PerfSuite {
		s := PerfSuite{MIPS: mips(a.retired, a.wall), FreshMIPS: mips(a.freshRetired, a.freshWall)}
		if s.FreshMIPS > 0 {
			s.PoolSpeedup = s.MIPS / s.FreshMIPS
		}
		return s
	}
	r.Spec = suite(sums["spec"])
	r.Gap = suite(sums["gap"])
	r.SpeedupVsBaseline = r.Spec.MIPS / baselineSpecMIPS
	if totalCycles > 0 {
		r.AllocsPerCycle = float64(after.Mallocs-before.Mallocs) / float64(totalCycles)
	}
	return r, nil
}

// JSON renders the BENCH_PR5.json document.
func (r *PerfResult) JSON() string {
	b, _ := json.MarshalIndent(r, "", "  ")
	return string(b) + "\n"
}

// CheckFloor fails when the named workload's pooled throughput falls
// below minMIPS — the CI regression gate for the hot-path work (mcf is
// the memory-bound canary; its floor is the figure recorded in the
// previous PR's BENCH document).
func (r *PerfResult) CheckFloor(name string, minMIPS float64) error {
	for _, w := range r.Workloads {
		if w.Name != name {
			continue
		}
		if w.MIPS < minMIPS {
			return fmt.Errorf("perf regression: %s at %.3f MIPS, below the %.3f floor", name, w.MIPS, minMIPS)
		}
		return nil
	}
	return fmt.Errorf("perf floor: workload %q not in the result set", name)
}

// Render prints the throughput table.
func (r *PerfResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Simulator throughput (scale %d, %s, %s; MIPS = retired instrs / host wall second / 1e6)\n",
		r.Scale, r.Engine, r.Host)
	fmt.Fprintf(&sb, "%-18s%-12s%12s%12s%12s\n", "benchmark", "suite", "MIPS", "fresh", "cycles")
	for _, w := range r.Workloads {
		fmt.Fprintf(&sb, "%-18s%-12s%12.2f%12.2f%12d\n", w.Name, w.Suite, w.MIPS, w.FreshMIPS, w.Cycles)
	}
	fmt.Fprintf(&sb, "SPEC-like aggregate: %.3f MIPS pooled, %.3f fresh (pool speedup %.2fx)\n",
		r.Spec.MIPS, r.Spec.FreshMIPS, r.Spec.PoolSpeedup)
	fmt.Fprintf(&sb, "GAP-like aggregate:  %.3f MIPS pooled, %.3f fresh (pool speedup %.2fx)\n",
		r.Gap.MIPS, r.Gap.FreshMIPS, r.Gap.PoolSpeedup)
	fmt.Fprintf(&sb, "vs pre-refactor baseline (%.3f MIPS on the reference host): %.2fx\n",
		r.BaselineSpecMIPS, r.SpeedupVsBaseline)
	fmt.Fprintf(&sb, "steady-state allocations: %.4f objects per simulated cycle\n", r.AllocsPerCycle)
	return sb.String()
}
