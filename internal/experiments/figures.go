package experiments

import (
	"fmt"
	"strings"

	"mssr/internal/sim"
	"mssr/internal/stats"
	"mssr/internal/workloads"
)

// ------------------------------------------------------------ Figure 3 ---

// Figure3Result holds per-set replacement counts of the Register
// Integration reuse table for each associativity, per microbenchmark.
type Figure3Result struct {
	Variants []string
	Ways     []int
	Sets     int
	// Replacements[variant][ways] is the per-set replacement histogram.
	Replacements map[string]map[int][]uint64
}

// Figure3 reproduces the RI replacement-frequency study (§2.2.4).
func Figure3(scale int) (*Figure3Result, error) {
	r := &Figure3Result{
		Variants:     []string{"nested-mispred", "linear-mispred"},
		Ways:         []int{1, 2, 4},
		Sets:         64,
		Replacements: map[string]map[int][]uint64{},
	}
	var specs []sim.Spec
	for _, name := range r.Variants {
		for _, w := range r.Ways {
			specs = append(specs, riSpec(fmt.Sprintf("%s/%d", name, w), name, scale, r.Sets, w))
		}
	}
	res, err := runSpecs(specs)
	if err != nil {
		return nil, err
	}
	for _, v := range r.Variants {
		r.Replacements[v] = map[int][]uint64{}
		for _, w := range r.Ways {
			r.Replacements[v][w] = res[fmt.Sprintf("%s/%d", v, w)].RIReplacements
		}
	}
	return r, nil
}

// Total sums the replacements for one variant and associativity.
func (r *Figure3Result) Total(variant string, ways int) uint64 {
	var t uint64
	for _, v := range r.Replacements[variant][ways] {
		t += v
	}
	return t
}

const shades = " .:-=+*#%@"

// Render prints ASCII heatmaps: one row of 64 set cells per
// configuration, light = few replacements, dark = many (as in the paper's
// Figure 3 shading).
func (r *Figure3Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Figure 3: RI reuse-table replacement frequency per set (light=low, dark=high)\n")
	for _, v := range r.Variants {
		// Normalize shading across this variant's configurations.
		var maxRepl uint64 = 1
		for _, w := range r.Ways {
			for _, c := range r.Replacements[v][w] {
				if c > maxRepl {
					maxRepl = c
				}
			}
		}
		fmt.Fprintf(&sb, "%s (max %d replacements/set)\n", v, maxRepl)
		for _, w := range r.Ways {
			fmt.Fprintf(&sb, "  %d-way |", w)
			for _, c := range r.Replacements[v][w] {
				idx := int(uint64(len(shades)-1) * c / maxRepl)
				sb.WriteByte(shades[idx])
			}
			fmt.Fprintf(&sb, "| total %d\n", r.Total(v, w))
		}
	}
	return sb.String()
}

// ------------------------------------------------------------ Figure 4 ---

// Figure4Result is the reconvergence-type breakdown per benchmark.
type Figure4Result struct {
	Workloads []string
	// Fraction[name][type] for the three stats.ReconvType values.
	Fraction map[string][3]float64
	Stats    map[string]*stats.Stats
}

// profileSpec is the generous tracking configuration used for the
// Figure 4 / Figure 11 profiles (8 streams so distant reconvergence is
// observable, as the paper's profiling tooling does).
func profileSpec(key, workload string, scale int) sim.Spec {
	return rgidSpec(key, workload, scale, 8, 256)
}

// Figure4 profiles reconvergence types across all suites (§2.2.5).
func Figure4(scale int) (*Figure4Result, error) {
	r := &Figure4Result{Fraction: map[string][3]float64{}, Stats: map[string]*stats.Stats{}}
	var specs []sim.Spec
	for _, w := range workloads.All() {
		r.Workloads = append(r.Workloads, w.Name)
		specs = append(specs, profileSpec(w.Name, w.Name, scale))
	}
	res, err := runSpecs(specs)
	if err != nil {
		return nil, err
	}
	r.Stats = res
	for _, name := range r.Workloads {
		st := res[name]
		r.Fraction[name] = [3]float64{
			st.ReconvFraction(stats.ReconvSimple),
			st.ReconvFraction(stats.ReconvSoftware),
			st.ReconvFraction(stats.ReconvHardware),
		}
	}
	return r, nil
}

// MultiStreamFraction returns the combined software+hardware-induced
// fraction for one workload.
func (r *Figure4Result) MultiStreamFraction(name string) float64 {
	f := r.Fraction[name]
	return f[1] + f[2]
}

// Render prints the per-benchmark breakdown.
func (r *Figure4Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Figure 4: reconvergence-type breakdown\n")
	cols := []string{"simple", "sw-induced", "hw-induced", "reconvs"}
	header(&sb, "benchmark", cols)
	w := colWidth(cols)
	for _, name := range r.Workloads {
		f := r.Fraction[name]
		fmt.Fprintf(&sb, "%-18s%*s%*s%*s%*d  %s\n", name,
			w, fmt.Sprintf("%.1f%%", 100*f[0]),
			w, fmt.Sprintf("%.1f%%", 100*f[1]),
			w, fmt.Sprintf("%.1f%%", 100*f[2]),
			w, r.Stats[name].Reconvergences,
			stackedBar(40, f[0], f[1], f[2]))
	}
	sb.WriteString("bar legend: '.' simple, 's' software-induced, 'H' hardware-induced\n")
	return sb.String()
}

// stackedBar renders fractions as a fixed-width horizontal stacked bar
// using '.', 's' and 'H' cells (the paper's Figure 4 encoding).
func stackedBar(width int, fracs ...float64) string {
	glyphs := []byte{'.', 's', 'H', '+', '*'}
	bar := make([]byte, 0, width+2)
	bar = append(bar, '|')
	used := 0
	var cum float64
	for i, f := range fracs {
		cum += f
		upto := int(cum*float64(width) + 0.5)
		for used < upto && used < width {
			bar = append(bar, glyphs[i%len(glyphs)])
			used++
		}
	}
	for used < width {
		bar = append(bar, ' ')
		used++
	}
	return string(append(bar, '|'))
}

// ----------------------------------------------------------- Figure 10 ---

// Figure10Configs are the stream/WPB sweep points of Figure 10
// (streams x squash-log entries; WPB block entries are a quarter of the
// log, §4.1.2).
var Figure10Configs = []struct {
	Name    string
	Streams int
	Entries int
}{
	{"1x16", 1, 16},
	{"1x64", 1, 64},
	{"2x64", 2, 64},
	{"4x64", 4, 64},
	{"4x1024", 4, 1024},
}

// Figure10Result holds IPC improvements per workload per configuration.
type Figure10Result struct {
	Workloads []string
	Configs   []string
	// Improvement[workload][config] is the fractional IPC improvement
	// over the no-reuse baseline.
	Improvement map[string]map[string]float64
	Stats       map[string]*stats.Stats
}

// Figure10 sweeps the multi-stream configurations over every workload.
func Figure10(scale int) (*Figure10Result, error) {
	r := &Figure10Result{Improvement: map[string]map[string]float64{}}
	for _, c := range Figure10Configs {
		r.Configs = append(r.Configs, c.Name)
	}
	var specs []sim.Spec
	for _, w := range workloads.All() {
		if w.Suite == "micro" {
			continue // Figure 10 covers the SPEC and GAP suites
		}
		r.Workloads = append(r.Workloads, w.Name)
		specs = append(specs, baseSpec(w.Name+"/baseline", w.Name, scale))
		for _, c := range Figure10Configs {
			specs = append(specs, rgidSpec(w.Name+"/"+c.Name, w.Name, scale, c.Streams, c.Entries))
		}
	}
	res, err := runSpecs(specs)
	if err != nil {
		return nil, err
	}
	r.Stats = res
	for _, name := range r.Workloads {
		base := res[name+"/baseline"]
		r.Improvement[name] = map[string]float64{}
		for _, c := range r.Configs {
			r.Improvement[name][c] = improvement(base, res[name+"/"+c])
		}
	}
	return r, nil
}

// Average returns the mean improvement for a config over a suite ("" =
// all workloads in the result).
func (r *Figure10Result) Average(config, suite string) float64 {
	var sum float64
	var n int
	for _, name := range r.Workloads {
		if suite != "" {
			w, err := workloads.ByName(name)
			if err != nil || w.Suite != suite {
				continue
			}
		}
		sum += r.Improvement[name][config]
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Render prints the per-benchmark improvement table with suite averages.
func (r *Figure10Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Figure 10: IPC improvement over no-reuse baseline (streams x log entries)\n")
	header(&sb, "benchmark", r.Configs)
	w := colWidth(r.Configs)
	for _, name := range r.Workloads {
		fmt.Fprintf(&sb, "%-18s", name)
		for _, c := range r.Configs {
			fmt.Fprintf(&sb, "%*s", w, pct(r.Improvement[name][c]))
		}
		sb.WriteByte('\n')
	}
	for _, suite := range []string{"spec2006", "spec2017", "gap"} {
		fmt.Fprintf(&sb, "%-18s", "avg "+suite)
		for _, c := range r.Configs {
			fmt.Fprintf(&sb, "%*s", w, pct(r.Average(c, suite)))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// ----------------------------------------------------------- Figure 11 ---

// Figure11Result is the reconvergence stream-distance breakdown.
type Figure11Result struct {
	Workloads []string
	// Fraction[name][d] is the fraction of reconvergences at distance
	// d+1 streams (bucket 0 = neighbouring stream); the last bucket
	// accumulates the tail.
	Fraction map[string][]float64
}

// Figure11 profiles reconvergence stream distance (§4.1.1).
func Figure11(scale int) (*Figure11Result, error) {
	r := &Figure11Result{Fraction: map[string][]float64{}}
	var specs []sim.Spec
	for _, w := range workloads.All() {
		r.Workloads = append(r.Workloads, w.Name)
		specs = append(specs, profileSpec(w.Name, w.Name, scale))
	}
	res, err := runSpecs(specs)
	if err != nil {
		return nil, err
	}
	for _, name := range r.Workloads {
		st := res[name]
		fr := make([]float64, stats.MaxStreamDistance)
		if st.Reconvergences > 0 {
			for d := 0; d < stats.MaxStreamDistance; d++ {
				fr[d] = float64(st.ReconvDistance[d]) / float64(st.Reconvergences)
			}
		}
		r.Fraction[name] = fr
	}
	return r, nil
}

// Cumulative returns the fraction of reconvergences within distance d
// streams (1 = neighbouring).
func (r *Figure11Result) Cumulative(name string, d int) float64 {
	var sum float64
	for i := 0; i < d && i < len(r.Fraction[name]); i++ {
		sum += r.Fraction[name][i]
	}
	return sum
}

// Render prints per-benchmark distance distributions.
func (r *Figure11Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Figure 11: reconvergence stream distance (1 = neighbouring stream)\n")
	header(&sb, "benchmark", []string{"d=1", "d=2", "d=3", "d=4", "d>=5", "<=3 cum"})
	for _, name := range r.Workloads {
		f := r.Fraction[name]
		tail := 0.0
		for i := 4; i < len(f); i++ {
			tail += f[i]
		}
		fmt.Fprintf(&sb, "%-18s%11.1f%%%11.1f%%%11.1f%%%11.1f%%%11.1f%%%11.1f%%  %s\n",
			name, 100*f[0], 100*f[1], 100*f[2], 100*f[3], 100*tail, 100*r.Cumulative(name, 3),
			stackedBar(40, f[0], f[1], f[2], f[3], tail))
	}
	sb.WriteString("bar legend: '.' d=1, 's' d=2, 'H' d=3, '+' d=4, '*' d>=5\n")
	return sb.String()
}

// ----------------------------------------------------------- Figure 12 ---

// Figure12Result compares RGID and RI across matched capacities on the
// GAP suite.
type Figure12Result struct {
	Workloads []string
	Configs   []string
	// Improvement[workload][config] over the no-reuse baseline.
	Improvement map[string]map[string]float64
}

// Figure12 runs the RGID-vs-RI comparison (§4.1.2): RI at 1/2/4 ways and
// 64/128 sets against RGID at 1/2/4 streams and 64/128 log entries.
func Figure12(scale int) (*Figure12Result, error) {
	type cfg struct {
		name string
		mk   func(key, workload string) sim.Spec
	}
	var cfgs []cfg
	for _, entries := range []int{64, 128} {
		for _, streams := range []int{1, 2, 4} {
			streams, entries := streams, entries
			cfgs = append(cfgs, cfg{fmt.Sprintf("rgid-%dx%d", streams, entries),
				func(key, workload string) sim.Spec { return rgidSpec(key, workload, scale, streams, entries) }})
		}
	}
	for _, sets := range []int{64, 128} {
		for _, ways := range []int{1, 2, 4} {
			sets, ways := sets, ways
			cfgs = append(cfgs, cfg{fmt.Sprintf("ri-%ds%dw", sets, ways),
				func(key, workload string) sim.Spec { return riSpec(key, workload, scale, sets, ways) }})
		}
	}
	r := &Figure12Result{Improvement: map[string]map[string]float64{}}
	for _, c := range cfgs {
		r.Configs = append(r.Configs, c.name)
	}
	var specs []sim.Spec
	for _, w := range workloads.Suite("gap") {
		r.Workloads = append(r.Workloads, w.Name)
		specs = append(specs, baseSpec(w.Name+"/baseline", w.Name, scale))
		for _, c := range cfgs {
			specs = append(specs, c.mk(w.Name+"/"+c.name, w.Name))
		}
	}
	res, err := runSpecs(specs)
	if err != nil {
		return nil, err
	}
	for _, name := range r.Workloads {
		base := res[name+"/baseline"]
		r.Improvement[name] = map[string]float64{}
		for _, c := range r.Configs {
			r.Improvement[name][c] = improvement(base, res[name+"/"+c])
		}
	}
	return r, nil
}

// Render prints the comparison grid.
func (r *Figure12Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Figure 12: RGID vs Register Integration on GAP (IPC improvement)\n")
	header(&sb, "config", r.Workloads)
	w := colWidth(r.Workloads)
	for _, c := range r.Configs {
		fmt.Fprintf(&sb, "%-18s", c)
		for _, wl := range r.Workloads {
			fmt.Fprintf(&sb, "%*s", w, pct(r.Improvement[wl][c]))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
