package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"strings"

	"mssr/internal/ckpt"
	"mssr/internal/sim"
	"mssr/internal/workloads"
)

// CheckpointedWorkload is one workload's checkpoint-warm, phase-selected
// measurement against its full-detail reference and its PR8-style
// uniform warm-sampling baseline.
type CheckpointedWorkload struct {
	Name  string `json:"name"`
	Suite string `json:"suite"`
	// Retired is the workload's dynamic instruction count; Windows is how
	// many representative windows the phase selection simulated in detail.
	Retired uint64 `json:"retired"`
	Windows int    `json:"windows"`
	// FullIPC is the full-detail ground truth; SampledIPC is the
	// phase-weighted estimate; ErrorPct their relative difference — the
	// accuracy the CI gate bounds. ErrorEstPct is the run's own
	// statistical confidence figure.
	FullIPC     float64 `json:"ipc_full"`
	SampledIPC  float64 `json:"ipc_sampled"`
	ErrorPct    float64 `json:"ipc_error_pct"`
	ErrorEstPct float64 `json:"ipc_error_est_pct"`
	// UniformMIPS is the PR8-configuration baseline: uniform warmed
	// sampling, checkpoints disabled. WarmMIPS is the checkpoint-warm
	// phase-selected effective throughput; Speedup is their ratio.
	UniformMIPS float64 `json:"mips_uniform"`
	WarmMIPS    float64 `json:"mips_warm"`
	Speedup     float64 `json:"speedup"`
	// CkptHits counts boundary states the warm run restored; FFExecuted
	// counts the functional instructions it still had to emulate — the
	// warm-path contract pins this to zero.
	CkptHits   int    `json:"ckpt_hits"`
	FFExecuted uint64 `json:"ff_executed"`
}

// CheckpointedResult is the checkpoint-acceleration benchmark behind
// BENCH_PR10.json: every SPEC-like workload run full-detail (accuracy
// reference), as a PR8-style uniform warm sweep (throughput baseline),
// and as a checkpoint-warm phase-selected sweep, all on the same pool.
type CheckpointedResult struct {
	Scale   int    `json:"scale"`
	Engine  string `json:"engine"`
	Host    string `json:"host"`
	Periods int    `json:"periods"`
	// UniformMIPS and WarmMIPS are suite aggregates (total program
	// instructions over total wall); SpeedupVsUniform is their same-host
	// ratio — the figure the CI speedup gate checks against the PR8
	// configuration.
	UniformMIPS      float64 `json:"mips_uniform"`
	WarmMIPS         float64 `json:"mips_warm"`
	SpeedupVsUniform float64 `json:"speedup_vs_uniform"`
	// MaxErrorPct is the worst per-workload IPC error of the
	// phase-selected estimates.
	MaxErrorPct float64 `json:"max_ipc_error_pct"`
	// Checkpoints and CheckpointBytes describe the store after the sweep.
	Checkpoints     int                    `json:"checkpoints"`
	CheckpointBytes int64                  `json:"checkpoint_bytes"`
	Workloads       []CheckpointedWorkload `json:"workloads"`
}

// Checkpointed measures checkpoint-accelerated, phase-selected
// multi-fidelity sampling. Like Fidelity it simulates in-process on one
// warm pool and times measured passes only. Three sweeps per workload:
// full detail (the accuracy reference and parameter probe), the PR8
// uniform warm configuration with checkpoints disabled (the throughput
// baseline), and a k-means phase-selected sweep against a shared
// checkpoint store — run once cold to profile and capture, then once
// measured, where every boundary restores and zero functional
// fast-forward instructions execute.
func Checkpointed(scale int) (*CheckpointedResult, error) {
	ctx := context.Background()
	store := ckpt.NewMemory(-1)
	runner := &sim.Runner{Jobs: 1, Checkpoints: store}

	type work struct {
		name, suite string
		base        sim.Spec
	}
	var works []work
	var fullSpecs []sim.Spec
	for _, suite := range []string{"spec2006", "spec2017"} {
		for _, w := range workloads.Suite(suite) {
			s := sim.Spec{Label: w.Name, Workload: w.Name, Scale: scale,
				Engine: sim.EngineRGID, Streams: 4, Entries: 64}
			works = append(works, work{w.Name, suite, s})
			fullSpecs = append(fullSpecs, s)
		}
	}

	if _, err := runner.Run(ctx, fullSpecs); err != nil { // warm the pool
		return nil, err
	}
	full, err := runner.Run(ctx, fullSpecs)
	if err != nil {
		return nil, err
	}

	// The PR8 baseline: uniform warmed sampling with checkpoints off, so
	// every period re-emulates its functional skip exactly as PR8 did.
	uniSpecs := make([]sim.Spec, len(works))
	for i := range works {
		uniSpecs[i] = fidelitySpec(works[i].base, full[i].Stats.Retired)
		uniSpecs[i].NoCheckpoint = true
	}
	if _, err := runner.Run(ctx, uniSpecs); err != nil { // warm the fidelity path
		return nil, err
	}
	uni, err := runner.Run(ctx, uniSpecs)
	if err != nil {
		return nil, err
	}

	// The checkpointed sweep: same sampling geometry, cold skips (the
	// profiling pass measures an unwarmed core too, keeping the profile
	// canonical), k-means window placement. The cold pass profiles each
	// program and fills the store; the measured pass restores everything.
	ckSpecs := make([]sim.Spec, len(works))
	for i := range works {
		ckSpecs[i] = fidelitySpec(works[i].base, full[i].Stats.Retired)
		ckSpecs[i].Warm = false
		ckSpecs[i].PhaseSelect = sim.PhaseKMeans
	}
	if _, err := runner.Run(ctx, ckSpecs); err != nil { // profile + capture
		return nil, err
	}
	warm, err := runner.Run(ctx, ckSpecs)
	if err != nil {
		return nil, err
	}

	r := &CheckpointedResult{
		Scale:           scale,
		Engine:          "rgid-4x64",
		Host:            runtime.GOOS + "/" + runtime.GOARCH,
		Periods:         fidelityPeriods,
		Checkpoints:     store.Len(),
		CheckpointBytes: store.Size(),
	}
	var uniRetired, warmRetired uint64
	var uniWall, warmWall float64
	for i := range works {
		fr, ur, wr := full[i], uni[i], warm[i]
		if fr.Err != nil {
			return nil, fmt.Errorf("%s full detail: %w", works[i].name, fr.Err)
		}
		if ur.Err != nil {
			return nil, fmt.Errorf("%s uniform baseline: %w", works[i].name, ur.Err)
		}
		if wr.Err != nil {
			return nil, fmt.Errorf("%s checkpoint-warm: %w", works[i].name, wr.Err)
		}
		fullIPC := fr.Stats.IPC()
		sampled := wr.ExtrapolatedIPC
		errPct := 0.0
		if fullIPC > 0 {
			errPct = 100 * (sampled - fullIPC) / fullIPC
			if errPct < 0 {
				errPct = -errPct
			}
		}
		w := CheckpointedWorkload{
			Name:        works[i].name,
			Suite:       works[i].suite,
			Retired:     fr.Stats.Retired,
			Windows:     wr.Windows,
			FullIPC:     fullIPC,
			SampledIPC:  sampled,
			ErrorPct:    errPct,
			ErrorEstPct: 100 * wr.IPCErrorEst,
			UniformMIPS: ur.MIPS,
			WarmMIPS:    wr.MIPS,
			CkptHits:    wr.CkptHits,
			FFExecuted:  wr.FFExecuted,
		}
		if w.UniformMIPS > 0 {
			w.Speedup = w.WarmMIPS / w.UniformMIPS
		}
		if w.ErrorPct > r.MaxErrorPct {
			r.MaxErrorPct = w.ErrorPct
		}
		r.Workloads = append(r.Workloads, w)
		uniRetired += ur.TotalRetired
		uniWall += ur.Wall.Seconds()
		warmRetired += wr.TotalRetired
		warmWall += wr.Wall.Seconds()
	}
	mips := func(retired uint64, wall float64) float64 {
		if wall <= 0 {
			return 0
		}
		return float64(retired) / wall / 1e6
	}
	r.UniformMIPS = mips(uniRetired, uniWall)
	r.WarmMIPS = mips(warmRetired, warmWall)
	if r.UniformMIPS > 0 {
		r.SpeedupVsUniform = r.WarmMIPS / r.UniformMIPS
	}
	return r, nil
}

// JSON renders the BENCH_PR10.json document.
func (r *CheckpointedResult) JSON() string {
	b, _ := json.MarshalIndent(r, "", "  ")
	return string(b) + "\n"
}

// CheckError fails when any workload's phase-selected IPC estimate
// misses its full-detail reference by more than maxPct percent.
func (r *CheckpointedResult) CheckError(maxPct float64) error {
	for _, w := range r.Workloads {
		if w.ErrorPct > maxPct {
			return fmt.Errorf("checkpointed error gate: %s sampled IPC %.4f vs full %.4f (%.2f%% > %.2f%% bound)",
				w.Name, w.SampledIPC, w.FullIPC, w.ErrorPct, maxPct)
		}
	}
	return nil
}

// CheckSpeedup fails when the checkpoint-warm effective-throughput
// multiple over the PR8 uniform baseline falls below min.
func (r *CheckpointedResult) CheckSpeedup(min float64) error {
	if r.SpeedupVsUniform < min {
		return fmt.Errorf("checkpointed speedup gate: %.2fx warm over uniform baseline, below the %.2fx floor (%.3f vs %.3f MIPS)",
			r.SpeedupVsUniform, min, r.WarmMIPS, r.UniformMIPS)
	}
	return nil
}

// CheckWarmPath fails unless every measured run was fully warm: all
// boundaries restored from the checkpoint store and zero functional
// fast-forward instructions re-executed. This is the structural claim
// behind the speedup, so it gates unconditionally in CI.
func (r *CheckpointedResult) CheckWarmPath() error {
	for _, w := range r.Workloads {
		if w.FFExecuted != 0 || w.CkptHits == 0 {
			return fmt.Errorf("checkpointed warm-path gate: %s re-executed %d functional instructions (%d checkpoints restored)",
				w.Name, w.FFExecuted, w.CkptHits)
		}
	}
	return nil
}

// Render prints the accuracy/throughput table.
func (r *CheckpointedResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Checkpoint-warm phase-selected sampling (scale %d, %s, %s; %d-period profile, k-means windows)\n",
		r.Scale, r.Engine, r.Host, r.Periods)
	fmt.Fprintf(&sb, "%-14s%10s%8s%10s%9s%9s%12s%11s%9s%7s\n",
		"benchmark", "retired", "windows", "ipc-full", "sampled", "err%", "uni-MIPS", "warm-MIPS", "speedup", "hits")
	for _, w := range r.Workloads {
		fmt.Fprintf(&sb, "%-14s%10d%8d%10.4f%9.4f%9.2f%12.2f%11.2f%8.1fx%7d\n",
			w.Name, w.Retired, w.Windows, w.FullIPC, w.SampledIPC, w.ErrorPct,
			w.UniformMIPS, w.WarmMIPS, w.Speedup, w.CkptHits)
	}
	fmt.Fprintf(&sb, "aggregate: %.3f MIPS uniform warm baseline, %.3f checkpoint-warm (%.2fx); worst IPC error %.2f%%\n",
		r.UniformMIPS, r.WarmMIPS, r.SpeedupVsUniform, r.MaxErrorPct)
	fmt.Fprintf(&sb, "checkpoint store: %d states, %.1f KiB\n",
		r.Checkpoints, float64(r.CheckpointBytes)/1024)
	return sb.String()
}
