package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"strings"

	"mssr/internal/sim"
	"mssr/internal/workloads"
)

// pr6SpecMIPS is the SPEC-like pooled full-detail aggregate recorded in
// BENCH_PR6.json on the reference host. The multi-fidelity sweep reports
// its effective throughput as a multiple of this figure; as with the
// other baseline constants, only the ratio is meaningful off the
// reference host.
const pr6SpecMIPS = 1.519

// fidelityPeriods is how many {skip, detailed window} sample periods the
// sweep spreads over each workload. Many small windows beat few large
// ones at equal coverage: phase-heavy workloads (mcf, bzip2) need the
// denser systematic sample to keep the IPC estimate inside the gate.
const fidelityPeriods = 48

// FidelityWorkload is one workload's multi-fidelity measurement against
// its full-detail reference run.
type FidelityWorkload struct {
	Name  string `json:"name"`
	Suite string `json:"suite"`
	// Retired is the workload's dynamic instruction count; DetailRetired
	// is the slice of it the fidelity run simulated in detail.
	Retired       uint64 `json:"retired"`
	DetailRetired uint64 `json:"detail_retired"`
	Windows       int    `json:"windows"`
	// FullIPC is the ground truth from the full-detail run; SampledIPC
	// is the window-sampled estimate; ErrorPct is their relative
	// difference in percent — the accuracy the CI gate bounds.
	FullIPC    float64 `json:"ipc_full"`
	SampledIPC float64 `json:"ipc_sampled"`
	ErrorPct   float64 `json:"ipc_error_pct"`
	// ErrorEstPct is the run's own statistical confidence figure
	// (relative standard error of the window IPC mean, in percent) —
	// what a user sees without a reference run.
	ErrorEstPct float64 `json:"ipc_error_est_pct"`
	// FullMIPS is full-detail throughput; EffectiveMIPS counts every
	// program instruction (detailed or fast-forwarded) against the
	// fidelity run's wall clock; Speedup is their ratio.
	FullMIPS      float64 `json:"mips_full"`
	EffectiveMIPS float64 `json:"mips_effective"`
	Speedup       float64 `json:"speedup"`
}

// FidelityResult is the multi-fidelity accuracy/throughput benchmark
// behind BENCH_PR8.json: every SPEC-like workload run full-detail and
// again as fast-forward + sampled detailed windows, on the same warm
// core pool.
type FidelityResult struct {
	Scale   int    `json:"scale"`
	Engine  string `json:"engine"`
	Host    string `json:"host"`
	Periods int    `json:"periods"`
	// FullMIPS and EffectiveMIPS are suite aggregates (total retired
	// over total wall); SpeedupVsFull is their same-host ratio — the
	// host-independent figure the CI speedup gate checks.
	FullMIPS      float64 `json:"mips_full"`
	EffectiveMIPS float64 `json:"mips_effective"`
	SpeedupVsFull float64 `json:"speedup_vs_full"`
	// PR6SpecMIPS is the reference-host full-detail aggregate from
	// BENCH_PR6.json; SpeedupVsPR6 is comparable only on that host.
	PR6SpecMIPS  float64 `json:"pr6_spec_mips"`
	SpeedupVsPR6 float64 `json:"speedup_vs_pr6"`
	// MaxErrorPct is the worst per-workload IPC error.
	MaxErrorPct float64            `json:"max_ipc_error_pct"`
	Workloads   []FidelityWorkload `json:"workloads"`
}

// fidelitySpec derives the multi-fidelity spec for a workload whose
// full-detail run retired n instructions: fidelityPeriods sample periods
// tiled across the whole program, each one warmed functional skip plus a
// detailed window of 0.125% of the program (at least 256 instructions).
// Measured coverage is therefore ~6%, plus each window's quarter-window
// detailed-warmup prefix.
func fidelitySpec(base sim.Spec, n uint64) sim.Spec {
	dw := n / 800
	if dw < 256 {
		dw = 256
	}
	ff := uint64(1)
	if per := n / fidelityPeriods; per > dw {
		ff = per - dw
	}
	base.FastForward = ff
	base.DetailedWindow = dw
	base.SamplePeriods = fidelityPeriods
	base.Warm = true
	return base
}

// Fidelity measures the multi-fidelity execution mode. Like Perf it
// always simulates in-process — wall-clock is the quantity under test —
// and times warm-pool passes only: each spec list runs once unmeasured
// to warm the pool, then once measured. The full-detail pass doubles as
// the parameter probe (each workload's dynamic length sizes its skip and
// window) and as the accuracy reference.
func Fidelity(scale int) (*FidelityResult, error) {
	ctx := context.Background()
	runner := &sim.Runner{Jobs: 1}

	type work struct {
		name, suite string
		full        sim.Spec
	}
	var works []work
	var fullSpecs []sim.Spec
	for _, suite := range []string{"spec2006", "spec2017"} {
		for _, w := range workloads.Suite(suite) {
			p, err := workloads.Build(w.Name, scale)
			if err != nil {
				return nil, fmt.Errorf("build %s: %w", w.Name, err)
			}
			s := sim.Spec{Label: w.Name, Program: p, Engine: sim.EngineRGID, Streams: 4, Entries: 64}
			works = append(works, work{w.Name, suite, s})
			fullSpecs = append(fullSpecs, s)
		}
	}

	if _, err := runner.Run(ctx, fullSpecs); err != nil { // warm the pool
		return nil, err
	}
	full, err := runner.Run(ctx, fullSpecs)
	if err != nil {
		return nil, err
	}

	fidSpecs := make([]sim.Spec, len(works))
	for i := range works {
		fidSpecs[i] = fidelitySpec(works[i].full, full[i].Stats.Retired)
	}
	if _, err := runner.Run(ctx, fidSpecs); err != nil { // warm the fidelity path
		return nil, err
	}
	fid, err := runner.Run(ctx, fidSpecs)
	if err != nil {
		return nil, err
	}

	r := &FidelityResult{
		Scale:       scale,
		Engine:      "rgid-4x64",
		Host:        runtime.GOOS + "/" + runtime.GOARCH,
		Periods:     fidelityPeriods,
		PR6SpecMIPS: pr6SpecMIPS,
	}
	var fullRetired, fidRetired uint64
	var fullWall, fidWall float64
	for i := range works {
		fr, xr := full[i], fid[i]
		fullIPC := fr.Stats.IPC()
		sampled := xr.ExtrapolatedIPC
		if sampled == 0 && xr.Stats.Cycles > 0 {
			// Degenerate fallback (window swallowed the program): the
			// detailed aggregate is the estimate.
			sampled = fr.Stats.IPC()
		}
		errPct := 0.0
		if fullIPC > 0 {
			errPct = 100 * (sampled - fullIPC) / fullIPC
			if errPct < 0 {
				errPct = -errPct
			}
		}
		w := FidelityWorkload{
			Name:          works[i].name,
			Suite:         works[i].suite,
			Retired:       fr.Stats.Retired,
			DetailRetired: xr.Stats.Retired,
			Windows:       xr.Windows,
			FullIPC:       fullIPC,
			SampledIPC:    sampled,
			ErrorPct:      errPct,
			ErrorEstPct:   100 * xr.IPCErrorEst,
			FullMIPS:      fr.MIPS,
			EffectiveMIPS: xr.MIPS,
		}
		if w.FullMIPS > 0 {
			w.Speedup = w.EffectiveMIPS / w.FullMIPS
		}
		if w.ErrorPct > r.MaxErrorPct {
			r.MaxErrorPct = w.ErrorPct
		}
		r.Workloads = append(r.Workloads, w)
		fullRetired += fr.Stats.Retired
		fullWall += fr.Wall.Seconds()
		fidRetired += xr.TotalRetired
		fidWall += xr.Wall.Seconds()
	}
	mips := func(retired uint64, wall float64) float64 {
		if wall <= 0 {
			return 0
		}
		return float64(retired) / wall / 1e6
	}
	r.FullMIPS = mips(fullRetired, fullWall)
	r.EffectiveMIPS = mips(fidRetired, fidWall)
	if r.FullMIPS > 0 {
		r.SpeedupVsFull = r.EffectiveMIPS / r.FullMIPS
	}
	r.SpeedupVsPR6 = r.EffectiveMIPS / pr6SpecMIPS
	return r, nil
}

// JSON renders the BENCH_PR8.json document.
func (r *FidelityResult) JSON() string {
	b, _ := json.MarshalIndent(r, "", "  ")
	return string(b) + "\n"
}

// CheckError fails when any workload's sampled IPC misses its
// full-detail reference by more than maxPct percent. The comparison is
// between two deterministic simulations, so the gate is host-independent.
func (r *FidelityResult) CheckError(maxPct float64) error {
	for _, w := range r.Workloads {
		if w.ErrorPct > maxPct {
			return fmt.Errorf("fidelity error gate: %s sampled IPC %.4f vs full %.4f (%.2f%% > %.2f%% bound)",
				w.Name, w.SampledIPC, w.FullIPC, w.ErrorPct, maxPct)
		}
	}
	return nil
}

// CheckSpeedup fails when the same-host effective-throughput multiple
// over full detail falls below min.
func (r *FidelityResult) CheckSpeedup(min float64) error {
	if r.SpeedupVsFull < min {
		return fmt.Errorf("fidelity speedup gate: %.2fx effective over full detail, below the %.2fx floor (%.3f vs %.3f MIPS)",
			r.SpeedupVsFull, min, r.EffectiveMIPS, r.FullMIPS)
	}
	return nil
}

// Render prints the accuracy/throughput table.
func (r *FidelityResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Multi-fidelity execution (scale %d, %s, %s; %d warmed sample periods per workload)\n",
		r.Scale, r.Engine, r.Host, r.Periods)
	fmt.Fprintf(&sb, "%-14s%10s%10s%10s%9s%9s%11s%11s%9s\n",
		"benchmark", "retired", "detail", "ipc-full", "sampled", "err%", "full-MIPS", "eff-MIPS", "speedup")
	for _, w := range r.Workloads {
		fmt.Fprintf(&sb, "%-14s%10d%10d%10.4f%9.4f%9.2f%11.2f%11.2f%8.1fx\n",
			w.Name, w.Retired, w.DetailRetired, w.FullIPC, w.SampledIPC, w.ErrorPct,
			w.FullMIPS, w.EffectiveMIPS, w.Speedup)
	}
	fmt.Fprintf(&sb, "aggregate: %.3f MIPS full detail, %.3f effective (%.2fx); worst IPC error %.2f%%\n",
		r.FullMIPS, r.EffectiveMIPS, r.SpeedupVsFull, r.MaxErrorPct)
	fmt.Fprintf(&sb, "vs BENCH_PR6 SPEC aggregate (%.3f MIPS on the reference host): %.2fx\n",
		r.PR6SpecMIPS, r.SpeedupVsPR6)
	return sb.String()
}
