package rename

import (
	"testing"
	"testing/quick"

	"mssr/internal/isa"
)

func TestMatch(t *testing.T) {
	if !Match(3, 3) {
		t.Error("equal tags must match")
	}
	if Match(3, 4) {
		t.Error("unequal tags must not match")
	}
	if Match(NullRGID, NullRGID) {
		t.Error("null must never match, even against null")
	}
	if Match(NullRGID, 0) || Match(0, NullRGID) {
		t.Error("null must never match a real tag")
	}
}

func TestRATInitialState(t *testing.T) {
	r := NewRAT()
	for i := 1; i < isa.NumArchRegs; i++ {
		m := r.Get(isa.Reg(i))
		if m.Preg != PhysReg(i) || m.Gen != 0 {
			t.Errorf("x%d initial mapping = %+v", i, m)
		}
	}
	if z := r.Get(isa.Zero); z.Gen != NullRGID {
		t.Errorf("zero register generation = %v, want null", z.Gen)
	}
}

func TestRATSetReturnsOld(t *testing.T) {
	r := NewRAT()
	old := r.Set(isa.A0, Mapping{Preg: 100, Gen: 7})
	if old.Preg != PhysReg(isa.A0) || old.Gen != 0 {
		t.Errorf("old mapping = %+v", old)
	}
	if got := r.Get(isa.A0); got.Preg != 100 || got.Gen != 7 {
		t.Errorf("new mapping = %+v", got)
	}
}

func TestRATZeroRegisterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Set(x0) should panic")
		}
	}()
	NewRAT().Set(isa.Zero, Mapping{Preg: 5})
}

func TestRATSnapshotRestore(t *testing.T) {
	r := NewRAT()
	snap := r.Snapshot()
	r.Set(isa.A0, Mapping{Preg: 99, Gen: 9})
	r.Restore(snap)
	if got := r.Get(isa.A0); got.Preg != PhysReg(isa.A0) || got.Gen != 0 {
		t.Errorf("restore failed: %+v", got)
	}
}

func TestAllocatorSequence(t *testing.T) {
	a := NewAllocator(6)
	if g := a.Alloc(isa.A0); g != 1 {
		t.Errorf("first alloc = %d, want 1 (0 belongs to the initial mapping)", g)
	}
	if g := a.Alloc(isa.A0); g != 2 {
		t.Errorf("second alloc = %d", g)
	}
	if g := a.Alloc(isa.A1); g != 1 {
		t.Errorf("independent register should start at 1, got %d", g)
	}
}

func TestAllocatorOverflowSaturates(t *testing.T) {
	a := NewAllocator(4) // max = 14, assignable 1..13 after the initial 0
	seen := map[RGID]bool{}
	for i := 0; i < 13; i++ { // 1..13
		g := a.Alloc(isa.A0)
		if g == NullRGID || g >= 14 {
			t.Fatalf("allocated invalid tag %d", g)
		}
		if seen[g] {
			t.Fatalf("tag %d reissued before reset", g)
		}
		seen[g] = true
	}
	if a.Overflows != 1 {
		t.Fatalf("overflows = %d, want 1 (counter saturated issuing 13)", a.Overflows)
	}
	// Saturated: only null tags until reset — generations never alias.
	for i := 0; i < 3; i++ {
		if g := a.Alloc(isa.A0); g != NullRGID {
			t.Fatalf("post-saturation alloc = %d, want null", g)
		}
	}
	if a.Overflows != 1 {
		t.Errorf("overflow must be counted once per register, got %d", a.Overflows)
	}
	// Other registers are unaffected.
	if g := a.Alloc(isa.A1); g != 1 {
		t.Errorf("independent register alloc = %d", g)
	}
	a.Reset()
	if a.Overflows != 0 {
		t.Error("reset must clear overflow count")
	}
	if g := a.Alloc(isa.A0); g != 1 {
		t.Errorf("post-reset alloc = %d, want 1", g)
	}
}

func TestAllocatorWidthBounds(t *testing.T) {
	for _, w := range []int{1, 17, 0, -3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("width %d accepted", w)
				}
			}()
			NewAllocator(w)
		}()
	}
}

func TestFreeListFIFO(t *testing.T) {
	fl := NewFreeList(32, 4)
	var got []PhysReg
	for {
		p, ok := fl.Alloc()
		if !ok {
			break
		}
		got = append(got, p)
	}
	want := []PhysReg{32, 33, 34, 35}
	if len(got) != len(want) {
		t.Fatalf("allocated %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("allocated %v, want %v", got, want)
		}
	}
	fl.Free(40)
	fl.Free(41)
	if p, _ := fl.Alloc(); p != 40 {
		t.Errorf("FIFO order violated: got p%d", p)
	}
	if fl.Len() != 1 {
		t.Errorf("Len = %d", fl.Len())
	}
}

func TestFreeListOverflowPanics(t *testing.T) {
	fl := NewFreeList(0, 2)
	defer func() {
		if recover() == nil {
			t.Error("overfreeing should panic")
		}
	}()
	fl.Free(9)
}

func TestTrackerLifecycle(t *testing.T) {
	tr := NewTracker(8, 4) // p0..p3 live, p4..p7 free
	if tr.FreeCount() != 4 {
		t.Fatalf("FreeCount = %d", tr.FreeCount())
	}
	p, ok := tr.Alloc()
	if !ok || p != 4 {
		t.Fatalf("Alloc = p%d, %v", p, ok)
	}
	if !tr.IsLive(p) {
		t.Error("allocated register must be live")
	}
	// Squash: hold then unlive — register must NOT return to the free list.
	tr.Hold(p)
	tr.Unlive(p)
	if tr.FreeCount() != 3 {
		t.Errorf("held register returned to free list early")
	}
	// Reuse: revive, then the log entry releases its hold.
	tr.Revive(p)
	tr.Release(p)
	if tr.FreeCount() != 3 {
		t.Errorf("live register freed by release")
	}
	// Commit of a younger same-areg instruction unmaps it.
	tr.Unlive(p)
	if tr.FreeCount() != 4 {
		t.Errorf("register not freed when dead: FreeCount = %d", tr.FreeCount())
	}
	if err := tr.Audit(); err != nil {
		t.Errorf("audit: %v", err)
	}
}

func TestTrackerMultipleHolds(t *testing.T) {
	tr := NewTracker(8, 4)
	p, _ := tr.Alloc()
	tr.Hold(p)
	tr.Hold(p) // same register captured in two squash-log streams
	tr.Unlive(p)
	tr.Release(p)
	if tr.FreeCount() != 3 {
		t.Error("register freed while still held once")
	}
	tr.Release(p)
	if tr.FreeCount() != 4 {
		t.Error("register not freed after final release")
	}
}

func TestTrackerPanics(t *testing.T) {
	cases := []func(*Tracker){
		func(tr *Tracker) { tr.Unlive(7) },                                   // not live
		func(tr *Tracker) { tr.Release(7) },                                  // not held
		func(tr *Tracker) { tr.Revive(0) },                                   // live
		func(tr *Tracker) { p, _ := tr.Alloc(); tr.Unlive(p); tr.Revive(p) }, // unheld revive
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d should panic", i)
				}
			}()
			f(NewTracker(8, 4))
		}()
	}
}

func TestTrackerExhaustion(t *testing.T) {
	tr := NewTracker(6, 4)
	if _, ok := tr.Alloc(); !ok {
		t.Fatal("first alloc should succeed")
	}
	if _, ok := tr.Alloc(); !ok {
		t.Fatal("second alloc should succeed")
	}
	if _, ok := tr.Alloc(); ok {
		t.Fatal("third alloc should fail")
	}
}

// Property: any interleaving of alloc/hold/unlive/release operations keeps
// the tracker's partition invariant.
func TestTrackerAuditProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		tr := NewTracker(16, 4)
		var allocated []PhysReg // live, not held
		var held []PhysReg      // held (may or may not be live)
		for _, op := range ops {
			switch op % 4 {
			case 0:
				if p, ok := tr.Alloc(); ok {
					allocated = append(allocated, p)
				}
			case 1: // squash newest allocated: hold + unlive
				if n := len(allocated); n > 0 {
					p := allocated[n-1]
					allocated = allocated[:n-1]
					tr.Hold(p)
					tr.Unlive(p)
					held = append(held, p)
				}
			case 2: // release oldest held
				if len(held) > 0 {
					tr.Release(held[0])
					held = held[1:]
				}
			case 3: // retire newest allocated (unlive straight to free)
				if n := len(allocated); n > 0 {
					tr.Unlive(allocated[n-1])
					allocated = allocated[:n-1]
				}
			}
			if err := tr.Audit(); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
