// Package rename implements the register-rename substrate: physical
// register names, the Register Alias Table (RAT) extended with the paper's
// Rename Mapping Generation IDs (RGIDs, §3.1), the RGID allocator with
// overflow tracking (§3.3.2), the free list, and a physical-register
// lifecycle tracker that supports the squash-reuse holding discipline
// (§3.3.2 conditions 1-5).
package rename

import (
	"fmt"

	"mssr/internal/isa"
)

// PhysReg names a physical register.
type PhysReg uint16

// NoPreg is the absent physical register.
const NoPreg PhysReg = 0xFFFF

// RGID is a Rename Mapping Generation ID. Each architectural register has
// its own monotonically increasing generation counter; equal (areg, RGID)
// pairs on any two execution paths denote the same mapping and therefore
// the same value. The all-ones value is reserved as NullRGID: a mapping
// that must never pass a reuse test (non-renameable destinations, overflow
// windows, post-reset in-flight state).
type RGID uint16

// NullRGID never matches any RGID, including itself, in reuse tests.
const NullRGID RGID = 0xFFFF

// Mapping is one architectural-to-physical register mapping with its
// generation tag, as held in the RAT and checkpointed/rolled back with it.
type Mapping struct {
	Preg PhysReg
	Gen  RGID
}

// Match reports whether two generation tags denote the same mapping. Null
// tags never match (paper §3.3.2: the null RGID marks non-reusable
// destinations).
func Match(a, b RGID) bool { return a != NullRGID && b != NullRGID && a == b }

// RAT is the register alias table with RGID extension. The zero register is
// pinned: it always maps to preg 0 with a null generation, and writes to it
// are ignored by construction (instructions writing x0 have no destination).
type RAT struct {
	m [isa.NumArchRegs]Mapping
}

// NewRAT builds the initial RAT mapping architectural register i to
// physical register i with generation 0 (generation tags of the initial
// mappings are real, matchable generations, consistent with the allocator
// starting at 1).
func NewRAT() *RAT {
	r := &RAT{}
	r.Reset()
	return r
}

// Reset restores the initial mappings: architectural register i to
// physical register i with generation 0, the zero register pinned to the
// null generation.
func (r *RAT) Reset() {
	for i := range r.m {
		r.m[i] = Mapping{Preg: PhysReg(i), Gen: 0}
	}
	r.m[isa.Zero] = Mapping{Preg: 0, Gen: NullRGID}
}

// Get returns the current mapping of reg.
func (r *RAT) Get(reg isa.Reg) Mapping { return r.m[reg] }

// Set installs a new mapping for reg and returns the previous one for
// rollback bookkeeping. Setting the zero register panics: callers must
// treat x0 writes as having no destination.
func (r *RAT) Set(reg isa.Reg, m Mapping) Mapping {
	if reg == isa.Zero {
		panic("rename: remapping the zero register")
	}
	old := r.m[reg]
	r.m[reg] = m
	return old
}

// Snapshot copies the full table (used by tests and debug audits; the core
// recovers via ROB rollback, the functional equivalent of the paper's
// checkpoint-plus-rollback scheme).
func (r *RAT) Snapshot() [isa.NumArchRegs]Mapping { return r.m }

// Restore replaces the full table.
func (r *RAT) Restore(s [isa.NumArchRegs]Mapping) { r.m = s }

// Allocator hands out RGIDs from per-architectural-register global
// counters. Per the paper, these counters are never checkpointed or rolled
// back — they identify mappings on both correct and wrong paths. The
// allocator tracks wrap-arounds so the core can trigger the global RGID
// reset protocol.
type Allocator struct {
	next      [isa.NumArchRegs]RGID
	max       RGID // largest assignable RGID (width-limited), < NullRGID
	Overflows int  // wrap events since the last reset
}

// NewAllocator builds an allocator with the given tag width in bits. Width
// 6 matches the paper's Table 2; the value 2^width-1 is reserved for
// NullRGID within the width, so assignable tags are 0..2^width-2.
func NewAllocator(widthBits int) *Allocator {
	if widthBits < 2 || widthBits > 16 {
		panic(fmt.Sprintf("rename: unsupported RGID width %d", widthBits))
	}
	a := &Allocator{max: RGID(1<<widthBits) - 2}
	for i := range a.next {
		// Generation 0 is owned by the initial RAT mappings.
		a.next[i] = 1
	}
	return a
}

// Alloc returns a fresh generation for reg and advances its counter. When
// the counter saturates, Alloc returns NullRGID until the next Reset — the
// paper's overflow handling: a null tag marks the destination as not
// reusable, guaranteeing that generations never alias, and the global
// reset protocol (triggered by Overflows) restores normal assignment.
func (a *Allocator) Alloc(reg isa.Reg) RGID {
	g := a.next[reg]
	if g >= a.max {
		return NullRGID
	}
	a.next[reg] = g + 1
	if a.next[reg] == a.max {
		a.Overflows++
	}
	return g
}

// Reset restarts all counters after a global RGID reset (§3.3.2). The
// caller is responsible for the accompanying protocol: invalidating squash
// logs, nulling in-flight tags, and suspending stream capture until the
// pipeline has drained.
func (a *Allocator) Reset() {
	for i := range a.next {
		a.next[i] = 1
	}
	a.Overflows = 0
}

// Null reports the null tag for this allocator's width. All widths share
// the single NullRGID sentinel.
func (a *Allocator) Null() RGID { return NullRGID }

// FreeList is a FIFO free list of physical registers.
type FreeList struct {
	regs []PhysReg
	head int
	size int
}

// NewFreeList builds a free list containing pregs [first, first+n).
func NewFreeList(first PhysReg, n int) *FreeList {
	fl := &FreeList{regs: make([]PhysReg, n)}
	fl.Reset(first)
	return fl
}

// Reset refills the list in place with pregs [first, first+capacity) in
// FIFO order, where capacity is the size the list was built with.
func (fl *FreeList) Reset(first PhysReg) {
	for i := range fl.regs {
		fl.regs[i] = first + PhysReg(i)
	}
	fl.head = 0
	fl.size = len(fl.regs)
}

// Len reports how many registers are free.
func (fl *FreeList) Len() int { return fl.size }

// Alloc removes and returns one free register; ok is false when empty.
func (fl *FreeList) Alloc() (PhysReg, bool) {
	if fl.size == 0 {
		return NoPreg, false
	}
	p := fl.regs[fl.head]
	fl.head++
	if fl.head == len(fl.regs) {
		fl.head = 0
	}
	fl.size--
	return p, true
}

// Free returns a register to the list.
func (fl *FreeList) Free(p PhysReg) {
	tail := fl.head + fl.size
	if tail >= len(fl.regs) {
		tail -= len(fl.regs)
	}
	if fl.size == len(fl.regs) {
		// Growing past the initial capacity indicates a double free.
		panic(fmt.Sprintf("rename: free list overflow freeing p%d", p))
	}
	fl.regs[tail] = p
	fl.size++
}

// pregState tracks one physical register's lifecycle.
type pregState struct {
	// live: the register is the destination of an in-flight instruction
	// or part of committed architectural state.
	live bool
	// holds: reference count of squash-reuse structures (squash log
	// entries, RI table entries) reserving the register for possible
	// reuse (§3.3.2).
	holds int
}

// Tracker arbitrates physical-register freeing between the conventional
// rename lifecycle and the squash-reuse holding discipline. A register
// returns to the free list exactly when it is neither live nor held. The
// Tracker is the single authority on freeing, which makes double-free and
// leak bugs structurally impossible to miss: Audit checks the partition
// invariant.
type Tracker struct {
	state []pregState
	fl    *FreeList
	nLive int // initially-live register count, for Reset

	// OnFree, when set, is invoked each time a register returns to the
	// free list. The core uses it to drive Register Integration's eager
	// transitive invalidation; the RGID scheme ignores it.
	OnFree func(PhysReg)
}

// NewTracker builds a tracker for n physical registers of which the first
// nLive are initially live (the initial RAT mappings) and the rest free.
func NewTracker(n, nLive int) *Tracker {
	t := &Tracker{
		state: make([]pregState, n),
		fl:    NewFreeList(PhysReg(nLive), n-nLive),
		nLive: nLive,
	}
	for i := 0; i < nLive; i++ {
		t.state[i].live = true
	}
	return t
}

// Reset restores the initial partition in place: the first nLive
// registers live (the initial RAT mappings), the rest free with no
// holds. OnFree is kept but not invoked for the refill — the consumers
// driven by it reset themselves separately.
func (t *Tracker) Reset() {
	clear(t.state)
	for i := 0; i < t.nLive; i++ {
		t.state[i].live = true
	}
	t.fl.Reset(PhysReg(t.nLive))
}

// FreeCount reports how many registers are on the free list.
func (t *Tracker) FreeCount() int { return t.fl.Len() }

// Alloc draws a fresh register from the free list, marking it live.
func (t *Tracker) Alloc() (PhysReg, bool) {
	p, ok := t.fl.Alloc()
	if !ok {
		return NoPreg, false
	}
	s := &t.state[p]
	if s.live || s.holds != 0 {
		panic(fmt.Sprintf("rename: allocated p%d is not idle (live=%v holds=%d)", p, s.live, s.holds))
	}
	s.live = true
	return p, true
}

// Revive marks a held register live again: a reuse hit re-adopts the
// squashed instruction's destination register as the destination of the
// reusing instruction.
func (t *Tracker) Revive(p PhysReg) {
	s := &t.state[p]
	if s.live {
		panic(fmt.Sprintf("rename: reviving live p%d", p))
	}
	if s.holds == 0 {
		panic(fmt.Sprintf("rename: reviving unheld p%d", p))
	}
	s.live = true
}

// Unlive clears the live bit (instruction squashed, or the previous
// mapping's register released at commit), freeing the register if no holds
// remain.
func (t *Tracker) Unlive(p PhysReg) {
	s := &t.state[p]
	if !s.live {
		panic(fmt.Sprintf("rename: unlive on non-live p%d", p))
	}
	s.live = false
	t.maybeFree(p)
}

// Hold adds a squash-reuse reservation on p.
func (t *Tracker) Hold(p PhysReg) { t.state[p].holds++ }

// Release drops one squash-reuse reservation, freeing the register when it
// is otherwise dead.
func (t *Tracker) Release(p PhysReg) {
	s := &t.state[p]
	if s.holds == 0 {
		panic(fmt.Sprintf("rename: release on unheld p%d", p))
	}
	s.holds--
	t.maybeFree(p)
}

// IsLive reports the live bit (used by debug audits).
func (t *Tracker) IsLive(p PhysReg) bool { return t.state[p].live }

// Holds reports the reservation count (used by debug audits).
func (t *Tracker) Holds(p PhysReg) int { return t.state[p].holds }

func (t *Tracker) maybeFree(p PhysReg) {
	s := &t.state[p]
	if !s.live && s.holds == 0 {
		t.fl.Free(p)
		if t.OnFree != nil {
			t.OnFree(p)
		}
	}
}

// Audit verifies the partition invariant: every register is exactly one of
// {free, live, held-only}, and the free-list population matches the number
// of idle registers. It returns an error describing the first violation.
func (t *Tracker) Audit() error {
	idle := 0
	for p := range t.state {
		s := t.state[p]
		if !s.live && s.holds == 0 {
			idle++
		}
		if s.holds < 0 {
			return fmt.Errorf("p%d has negative holds", p)
		}
	}
	if idle != t.fl.Len() {
		return fmt.Errorf("free list holds %d registers but %d are idle", t.fl.Len(), idle)
	}
	return nil
}
