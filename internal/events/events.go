// Package events is the live-telemetry bus: a bounded,
// allocation-disciplined pub/sub hub carrying two typed streams — job
// lifecycle events (queued → dispatched → running → window k/N →
// done/failed) and interval telemetry frames (obs.Interval records as
// the sampler produces them, including multi-fidelity Mode/Window
// annotations). The daemon (/v1/ws) and the fleet coordinator multiplex
// subscriptions over a hand-rolled RFC 6455 WebSocket transport; slow
// consumers lose frames (counted) rather than ever blocking a
// publisher, which is what keeps the cycle loop's zero-allocation
// discipline intact with a hub attached.
package events

import (
	"strconv"

	"mssr/internal/obs"
)

// Event types. A consumer switches on Type; every other field is
// populated only where it makes sense for the type (zero values are
// omitted from the encoding).
const (
	// Job lifecycle (server and fleet; Job is the owning job id).
	TypeJobQueued = "job_queued" // submission accepted (Specs = batch size)
	TypeJobStart  = "job_start"  // left the queue (QueueMS = queue latency)
	TypeJobDone   = "job_done"   // every spec finished ok (WallMS = run duration)
	TypeJobFailed = "job_failed" // finished with >= 1 failed spec

	// Per-spec lifecycle (Key = canonical spec key).
	TypeSpecStart      = "spec_start"      // a leader simulation began executing
	TypeSpecDispatched = "spec_dispatched" // fleet: chunk handed to Worker
	TypeSpecDone       = "spec_done"       // spec resolved (Source, WallMS, IPC; Error on failure)

	// Multi-fidelity progress: detailed window Window of Windows started.
	TypeWindow = "window"

	// Interval telemetry: one obs.Interval frame, live from the sampler.
	TypeInterval = "interval"

	// Fleet ring membership and recovery (Worker = address).
	TypeWorkerUp         = "worker_up"         // health probe passed, worker (re)joined the ring
	TypeWorkerDown       = "worker_down"       // probe failures crossed the threshold
	TypeWorkerRegistered = "worker_registered" // dynamic registration accepted
	TypeSteal            = "steal"             // Specs units stolen from Worker's backlog
	TypeRetry            = "retry"             // Specs units re-queued after Worker failed them
)

// Event is one frame on the bus. It is a flat value type: publishing
// copies it through channel buffers, so no event ever aliases publisher
// state (in particular the sampler's interval ring) and the no-subscriber
// publish path allocates nothing.
type Event struct {
	// Seq is the hub-assigned publication sequence number (1-based,
	// monotonic per hub). Gaps in a subscriber's view are dropped frames.
	Seq uint64 `json:"seq"`
	// TimeNS is the hub's publication timestamp in Unix nanoseconds.
	TimeNS int64  `json:"time_ns,omitempty"`
	Type   string `json:"type"`

	Job    string `json:"job,omitempty"`    // owning job id
	Key    string `json:"key,omitempty"`    // canonical spec key
	Worker string `json:"worker,omitempty"` // fleet worker address
	Source string `json:"source,omitempty"` // api.Source* for spec_done

	Specs   int `json:"specs,omitempty"`   // batch size / unit count
	Done    int `json:"done,omitempty"`    // specs resolved so far
	Window  int `json:"window,omitempty"`  // 1-based sample period
	Windows int `json:"windows,omitempty"` // total sample periods

	QueueMS float64 `json:"queue_ms,omitempty"` // queue latency (job_start)
	WallMS  float64 `json:"wall_ms,omitempty"`  // stage duration (spec_done, job_done)

	IPC             float64 `json:"ipc,omitempty"`              // spec_done: whole-run IPC
	ExtrapolatedIPC float64 `json:"extrapolated_ipc,omitempty"` // fidelity estimate
	IPCErrorEst     float64 `json:"ipc_error_est,omitempty"`    // relative standard error
	Extrapolated    bool    `json:"extrapolated,omitempty"`

	Error string `json:"error,omitempty"`

	// Interval is the telemetry frame, meaningful only when Type ==
	// TypeInterval (and omitted from the encoding otherwise). Held by
	// value so the event stays a flat copyable record.
	Interval obs.Interval `json:"interval"`
}

// AppendJSONString appends a JSON-quoted string, escaping the
// characters RFC 8259 requires (quote, backslash, control bytes). Bus
// strings are ASCII identifiers and Go error text, so no HTML or UTF-8
// special casing is needed for determinism — bytes >= 0x20 pass
// through. Exported for the NDJSON encoders that share the bus's
// deterministic framing (the /intervals stream).
func AppendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			dst = append(dst, '\\', c)
		case c == '\n':
			dst = append(dst, '\\', 'n')
		case c == '\t':
			dst = append(dst, '\\', 't')
		case c == '\r':
			dst = append(dst, '\\', 'r')
		case c < 0x20:
			const hex = "0123456789abcdef"
			dst = append(dst, '\\', 'u', '0', '0', hex[c>>4], hex[c&0xf])
		default:
			dst = append(dst, c)
		}
	}
	return append(dst, '"')
}

// AppendJSON appends the event as one JSON object to dst and returns
// the extended slice. The encoding is byte-deterministic: fixed field
// order, zero-valued fields omitted, floats in their shortest
// round-trippable form (the golden pins in golden_test.go freeze it).
// encoding/json unmarshals the output back into an identical Event.
func (e *Event) AppendJSON(dst []byte) []byte {
	dst = append(dst, `{"seq":`...)
	dst = strconv.AppendUint(dst, e.Seq, 10)
	if e.TimeNS != 0 {
		dst = append(dst, `,"time_ns":`...)
		dst = strconv.AppendInt(dst, e.TimeNS, 10)
	}
	dst = append(dst, `,"type":`...)
	dst = AppendJSONString(dst, e.Type)
	str := func(k, v string) {
		if v == "" {
			return
		}
		dst = append(dst, ',', '"')
		dst = append(dst, k...)
		dst = append(dst, '"', ':')
		dst = AppendJSONString(dst, v)
	}
	num := func(k string, v int) {
		if v == 0 {
			return
		}
		dst = append(dst, ',', '"')
		dst = append(dst, k...)
		dst = append(dst, '"', ':')
		dst = strconv.AppendInt(dst, int64(v), 10)
	}
	flt := func(k string, v float64) {
		if v == 0 {
			return
		}
		dst = append(dst, ',', '"')
		dst = append(dst, k...)
		dst = append(dst, '"', ':')
		dst = strconv.AppendFloat(dst, v, 'g', -1, 64)
	}
	str("job", e.Job)
	str("key", e.Key)
	str("worker", e.Worker)
	str("source", e.Source)
	num("specs", e.Specs)
	num("done", e.Done)
	num("window", e.Window)
	num("windows", e.Windows)
	flt("queue_ms", e.QueueMS)
	flt("wall_ms", e.WallMS)
	flt("ipc", e.IPC)
	flt("extrapolated_ipc", e.ExtrapolatedIPC)
	flt("ipc_error_est", e.IPCErrorEst)
	if e.Extrapolated {
		dst = append(dst, `,"extrapolated":true`...)
	}
	str("error", e.Error)
	if e.Type == TypeInterval {
		dst = append(dst, `,"interval":`...)
		dst = e.Interval.AppendJSON(dst)
	}
	return append(dst, '}')
}

// MarshalJSON routes encoding/json through AppendJSON, so every
// serialization of an Event — hub broadcast, test assertion, archived
// NDJSON — is the same bytes.
func (e *Event) MarshalJSON() ([]byte, error) {
	return e.AppendJSON(make([]byte, 0, 256)), nil
}
