package events

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestServeWSRoundTrip covers the full path: HTTP upgrade, hub
// subscription, deterministic JSON frames over the wire, clean close.
func TestServeWSRoundTrip(t *testing.T) {
	h := &Hub{Clock: func() int64 { return 7 }}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_ = ServeWS(h, w, r, ServeOptions{Job: r.URL.Query().Get("job")})
	}))
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	conn, err := Dial(ctx, srv.URL+"/v1/ws?job=j1")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Subscription registration races the dial returning; wait for it.
	deadline := time.Now().Add(2 * time.Second)
	for h.Subscribers() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("server never subscribed")
		}
		time.Sleep(time.Millisecond)
	}

	h.Publish(Event{Type: TypeJobQueued, Job: "j2"}) // filtered out
	h.Publish(Event{Type: TypeSpecDone, Job: "j1", Key: "k", IPC: 1.5})

	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	msg, err := conn.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	var ev Event
	if err := json.Unmarshal(msg, &ev); err != nil {
		t.Fatalf("decoding frame %q: %v", msg, err)
	}
	if ev.Type != TypeSpecDone || ev.Job != "j1" || ev.IPC != 1.5 || ev.TimeNS != 7 {
		t.Fatalf("wrong frame: %+v", ev)
	}
	// The wire bytes are the deterministic encoding, not encoding/json's.
	if want := string(ev.AppendJSON(nil)); string(msg) != want {
		t.Fatalf("wire frame %q != deterministic encoding %q", msg, want)
	}
}

// TestWSLargeFrame exercises the 16-bit and stays under the 64-bit
// extended-length paths in both directions.
func TestWSLargeFrame(t *testing.T) {
	big := strings.Repeat("x", 70_000) // > 65535: 8-byte extended length
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		conn, err := Upgrade(w, r)
		if err != nil {
			return
		}
		defer conn.Close()
		// Echo one message back, then send the oversized payload.
		msg, err := conn.ReadMessage()
		if err != nil {
			return
		}
		conn.WriteText(msg)
		conn.WriteText([]byte(big))
	}))
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	conn, err := Dial(ctx, srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))

	mid := strings.Repeat("y", 300) // 126..65535: 2-byte extended length
	if err := conn.WriteText([]byte(mid)); err != nil {
		t.Fatal(err)
	}
	echo, err := conn.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	if string(echo) != mid {
		t.Fatalf("echo corrupted: %d bytes", len(echo))
	}
	huge, err := conn.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	if string(huge) != big {
		t.Fatalf("large frame corrupted: %d bytes", len(huge))
	}
}

// TestWSPingClose: pings are answered transparently mid-stream and a
// close frame surfaces as io.EOF.
func TestWSPingClose(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		conn, err := Upgrade(w, r)
		if err != nil {
			return
		}
		defer conn.conn.Close()
		conn.writeFrame(opPing, []byte("hb"))
		// The client's ReadMessage must answer the ping without
		// surfacing it; wait for the pong before closing.
		for {
			var hdr [2]byte
			if _, err := io.ReadFull(conn.br, hdr[:]); err != nil {
				return
			}
			n := int(hdr[1] & 0x7f)
			var mask [4]byte
			if hdr[1]&0x80 != 0 {
				io.ReadFull(conn.br, mask[:])
			}
			payload := make([]byte, n)
			io.ReadFull(conn.br, payload)
			if hdr[0]&0x0f == opPong {
				conn.writeFrame(opClose, nil)
				return
			}
		}
	}))
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	conn, err := Dial(ctx, srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.ReadMessage(); !errors.Is(err, io.EOF) {
		t.Fatalf("want io.EOF after ping+close, got %v", err)
	}
}

// TestUpgradeRejectsPlainGET: a non-upgrade request gets an HTTP error,
// not a hijacked socket.
func TestUpgradeRejectsPlainGET(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if _, err := Upgrade(w, r); err == nil {
			t.Error("Upgrade accepted a plain GET")
		}
	}))
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("plain GET got %d, want 400", resp.StatusCode)
	}
}
