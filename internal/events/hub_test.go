package events

import (
	"sync"
	"testing"
	"time"
)

func collect(t *testing.T, sub *Subscriber, n int) []Event {
	t.Helper()
	out := make([]Event, 0, n)
	timeout := time.After(2 * time.Second)
	for len(out) < n {
		select {
		case ev, ok := <-sub.C():
			if !ok {
				t.Fatalf("channel closed after %d/%d events", len(out), n)
			}
			out = append(out, ev)
		case <-timeout:
			t.Fatalf("timed out after %d/%d events", len(out), n)
		}
	}
	return out
}

// TestHubFilterAndOrder: a job subscriber sees its own job's events and
// job-less events (ring membership), in publication order with
// monotonic seq; a firehose subscriber sees everything.
func TestHubFilterAndOrder(t *testing.T) {
	h := &Hub{Clock: func() int64 { return 42 }}
	fire := h.Subscribe("", 16)
	defer fire.Close()
	one := h.Subscribe("j1", 16)
	defer one.Close()

	h.Publish(Event{Type: TypeJobQueued, Job: "j1"})
	h.Publish(Event{Type: TypeJobQueued, Job: "j2"})
	h.Publish(Event{Type: TypeWorkerUp, Worker: "w"}) // job-less: passes every filter
	h.Publish(Event{Type: TypeJobDone, Job: "j1"})

	all := collect(t, fire, 4)
	for i := 1; i < len(all); i++ {
		if all[i].Seq <= all[i-1].Seq {
			t.Fatalf("seq not monotonic: %d after %d", all[i].Seq, all[i-1].Seq)
		}
	}
	if all[0].TimeNS != 42 {
		t.Fatalf("Clock override not used: time_ns %d", all[0].TimeNS)
	}

	mine := collect(t, one, 3)
	types := []string{mine[0].Type, mine[1].Type, mine[2].Type}
	want := []string{TypeJobQueued, TypeWorkerUp, TypeJobDone}
	for i := range want {
		if types[i] != want[i] {
			t.Fatalf("filtered stream = %v, want %v", types, want)
		}
	}
	for _, ev := range mine {
		if ev.Job != "" && ev.Job != "j1" {
			t.Fatalf("job filter leaked event for %q", ev.Job)
		}
	}
}

// TestHubDropsNotBlocks: a subscriber that stops reading loses frames
// (counted on both the subscriber and the hub) while Publish returns
// immediately.
func TestHubDropsNotBlocks(t *testing.T) {
	h := &Hub{}
	sub := h.Subscribe("", 2)
	defer sub.Close()

	start := time.Now()
	for i := 0; i < 10; i++ {
		h.Publish(Event{Type: TypeInterval})
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("publishing to a stalled subscriber took %s; must not block", d)
	}
	if got := sub.Dropped(); got != 8 {
		t.Fatalf("subscriber dropped %d frames, want 8", got)
	}
	if got := h.Dropped(); got != 8 {
		t.Fatalf("hub dropped %d frames, want 8", got)
	}
	if got := h.Published(); got != 10 {
		t.Fatalf("hub published %d, want 10", got)
	}
}

// TestHubCloseRace: closing subscribers concurrently with publishes and
// re-subscribes must be safe (no send on closed channel); run under
// -race.
func TestHubCloseRace(t *testing.T) {
	h := &Hub{}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				h.Publish(Event{Type: TypeInterval, Job: "j"})
			}
		}
	}()
	for i := 0; i < 50; i++ {
		sub := h.Subscribe("j", 1)
		go func() {
			for range sub.C() {
			}
		}()
		sub.Close()
		sub.Close() // idempotent
	}
	close(stop)
	wg.Wait()
	if h.Subscribers() != 0 {
		t.Fatalf("%d subscribers leaked", h.Subscribers())
	}
}

// TestHubPublishNoSubscribersAllocs pins the fast path the cycle loop
// depends on: with nobody subscribed, Publish is allocation-free.
func TestHubPublishNoSubscribersAllocs(t *testing.T) {
	h := &Hub{}
	ev := Event{Type: TypeInterval, Job: "j1", Key: "k"}
	allocs := testing.AllocsPerRun(100, func() {
		h.Publish(ev)
	})
	if allocs != 0 {
		t.Fatalf("no-subscriber Publish allocated %.1f objects; want 0", allocs)
	}
}

// TestHubEventByValue: a published event is decoupled from the
// publisher's copy — mutating the source after Publish must not change
// what the subscriber received (the sampler's ring slot is reused).
func TestHubEventByValue(t *testing.T) {
	h := &Hub{}
	sub := h.Subscribe("", 1)
	defer sub.Close()
	ev := Event{Type: TypeInterval, Key: "before"}
	h.Publish(ev)
	ev.Key = "after"
	got := collect(t, sub, 1)[0]
	if got.Key != "before" {
		t.Fatalf("subscriber saw mutated event: key %q", got.Key)
	}
}
