package events

import (
	"encoding/json"
	"testing"

	"mssr/internal/obs"
)

// TestEventEncodingGolden pins the wire encoding byte for byte. These
// strings are the contract with every consumer — the dashboard, msrtail
// archives, fleet relays — so a diff here means the protocol changed
// and the pin must be updated deliberately.
func TestEventEncodingGolden(t *testing.T) {
	cases := []struct {
		name string
		ev   Event
		want string
	}{
		{
			name: "lifecycle-minimal",
			ev:   Event{Seq: 1, Type: TypeJobQueued, Job: "j1", Specs: 3},
			want: `{"seq":1,"type":"job_queued","job":"j1","specs":3}`,
		},
		{
			name: "spec-done-full",
			ev: Event{
				Seq: 2, TimeNS: 1700000000000000000, Type: TypeSpecDone,
				Job: "j1", Key: "bfs/rgid", Worker: "http://w:1", Source: "run",
				Done: 2, WallMS: 12.5, IPC: 1.25,
				Extrapolated: true, ExtrapolatedIPC: 1.3, IPCErrorEst: 0.015,
			},
			want: `{"seq":2,"time_ns":1700000000000000000,"type":"spec_done","job":"j1","key":"bfs/rgid","worker":"http://w:1","source":"run","done":2,"wall_ms":12.5,"ipc":1.25,"extrapolated_ipc":1.3,"ipc_error_est":0.015,"extrapolated":true}`,
		},
		{
			name: "error-escaping",
			ev:   Event{Seq: 3, Type: TypeJobFailed, Job: "j2", Error: "bad \"spec\"\nat\tline\x01"},
			want: `{"seq":3,"type":"job_failed","job":"j2","error":"bad \"spec\"\nat\tline\u0001"}`,
		},
		{
			name: "worker-down",
			ev:   Event{Seq: 4, Type: TypeWorkerDown, Worker: "http://10.0.0.2:8371", Specs: 5, Error: "health probe failed"},
			want: `{"seq":4,"type":"worker_down","worker":"http://10.0.0.2:8371","specs":5,"error":"health probe failed"}`,
		},
		{
			name: "interval-frame",
			ev: Event{
				Seq: 5, Type: TypeInterval, Job: "j1", Key: "k",
				Interval: obs.Interval{
					Index: 3, Start: 8192, End: 12288,
					Retired: 4096, Fetched: 5000, Flushes: 2,
					Branches: 100, BranchMispredicts: 3,
					ReuseTests: 10, ReuseHits: 5, SquashedStreams: 1, Reconvergences: 1,
					L1DHits: 900, L1DMisses: 100, L2Hits: 80, L2Misses: 20, DRAMAccesses: 20,
					IPC: 1, ReuseRate: 0.5, MPKI: 0.732421875, L1DMissRate: 0.1,
					Mode: obs.ModeDetail, Window: 2,
				},
			},
			want: `{"seq":5,"type":"interval","job":"j1","key":"k","interval":{"index":3,"start_cycle":8192,"end_cycle":12288,"retired":4096,"fetched":5000,"flushes":2,"branches":100,"branch_mispredicts":3,"jump_mispredicts":0,"reuse_tests":10,"reuse_hits":5,"squashed_streams":1,"reconvergences":1,"rgid_resets":0,"l1d_hits":900,"l1d_misses":100,"l2_hits":80,"l2_misses":20,"dram_accesses":20,"ipc":1,"reuse_rate":0.5,"mpki":0.732421875,"l1d_miss_rate":0.1,"mode":"detail","window":2}}`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := string(tc.ev.AppendJSON(nil))
			if got != tc.want {
				t.Fatalf("encoding drifted:\ngot:  %s\nwant: %s", got, tc.want)
			}
			// MarshalJSON must produce the same bytes (the hub, msrtail and
			// archived NDJSON all route through it).
			viaJSON, err := json.Marshal(&tc.ev)
			if err != nil {
				t.Fatal(err)
			}
			if string(viaJSON) != tc.want {
				t.Fatalf("MarshalJSON diverged from AppendJSON:\ngot:  %s\nwant: %s", viaJSON, tc.want)
			}
			// Round trip: encoding/json must decode our encoding back into
			// an identical event.
			var back Event
			if err := json.Unmarshal([]byte(got), &back); err != nil {
				t.Fatalf("decoding own encoding: %v", err)
			}
			if back != tc.ev {
				t.Fatalf("round trip changed the event:\ngot:  %+v\nwant: %+v", back, tc.ev)
			}
		})
	}
}
