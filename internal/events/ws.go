package events

import (
	"bufio"
	"context"
	"crypto/rand"
	"crypto/sha1"
	"encoding/base64"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strings"
	"time"
)

// A minimal RFC 6455 WebSocket implementation — the module carries no
// dependencies, so the transport is hand-rolled on net/http's Hijacker.
// It supports exactly what the event bus needs: text frames, ping/pong,
// close, client-side masking, and no fragmentation (every event fits a
// single frame; the reader still rejects oversized payloads rather than
// trusting the peer).

// Frame opcodes.
const (
	opText  = 0x1
	opClose = 0x8
	opPing  = 0x9
	opPong  = 0xa
)

// maxFrame bounds an accepted payload; anything larger is a protocol
// error (events are a few hundred bytes).
const maxFrame = 1 << 20

// wsGUID is the fixed handshake GUID from RFC 6455 §1.3.
const wsGUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

func acceptKey(key string) string {
	h := sha1.Sum([]byte(key + wsGUID))
	return base64.StdEncoding.EncodeToString(h[:])
}

// WSConn is one WebSocket connection. Reads and writes may proceed
// concurrently (one reader, any writers — writes serialize on an
// internal mutex via writeFrame's single Write call path).
type WSConn struct {
	conn   net.Conn
	br     *bufio.Reader
	client bool // client side masks outgoing frames
	wbuf   []byte
}

// Upgrade hijacks an HTTP request into a WebSocket connection,
// completing the server side of the RFC 6455 handshake.
func Upgrade(w http.ResponseWriter, r *http.Request) (*WSConn, error) {
	if !headerHas(r.Header, "Connection", "upgrade") || !headerHas(r.Header, "Upgrade", "websocket") {
		http.Error(w, "websocket upgrade required", http.StatusBadRequest)
		return nil, errors.New("events: not a websocket upgrade request")
	}
	key := r.Header.Get("Sec-WebSocket-Key")
	if key == "" {
		http.Error(w, "missing Sec-WebSocket-Key", http.StatusBadRequest)
		return nil, errors.New("events: missing Sec-WebSocket-Key")
	}
	hj, ok := w.(http.Hijacker)
	if !ok {
		http.Error(w, "websocket unsupported", http.StatusInternalServerError)
		return nil, errors.New("events: response writer cannot hijack")
	}
	conn, rw, err := hj.Hijack()
	if err != nil {
		return nil, fmt.Errorf("events: hijack: %w", err)
	}
	resp := "HTTP/1.1 101 Switching Protocols\r\n" +
		"Upgrade: websocket\r\n" +
		"Connection: Upgrade\r\n" +
		"Sec-WebSocket-Accept: " + acceptKey(key) + "\r\n\r\n"
	if _, err := conn.Write([]byte(resp)); err != nil {
		conn.Close()
		return nil, fmt.Errorf("events: handshake write: %w", err)
	}
	return &WSConn{conn: conn, br: rw.Reader}, nil
}

func headerHas(h http.Header, name, token string) bool {
	for _, v := range h.Values(name) {
		for _, part := range strings.Split(v, ",") {
			if strings.EqualFold(strings.TrimSpace(part), token) {
				return true
			}
		}
	}
	return false
}

// Dial opens a WebSocket connection to rawURL (ws://, or http:// which
// is treated the same) and completes the client handshake.
func Dial(ctx context.Context, rawURL string) (*WSConn, error) {
	u, err := url.Parse(rawURL)
	if err != nil {
		return nil, fmt.Errorf("events: parsing url: %w", err)
	}
	host := u.Host
	if u.Port() == "" {
		host = net.JoinHostPort(u.Hostname(), "80")
	}
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", host)
	if err != nil {
		return nil, fmt.Errorf("events: dialing %s: %w", host, err)
	}
	var nonce [16]byte
	if _, err := rand.Read(nonce[:]); err != nil {
		conn.Close()
		return nil, err
	}
	key := base64.StdEncoding.EncodeToString(nonce[:])
	path := u.RequestURI()
	req := "GET " + path + " HTTP/1.1\r\n" +
		"Host: " + u.Host + "\r\n" +
		"Upgrade: websocket\r\n" +
		"Connection: Upgrade\r\n" +
		"Sec-WebSocket-Key: " + key + "\r\n" +
		"Sec-WebSocket-Version: 13\r\n\r\n"
	if deadline, ok := ctx.Deadline(); ok {
		conn.SetDeadline(deadline)
	}
	if _, err := conn.Write([]byte(req)); err != nil {
		conn.Close()
		return nil, fmt.Errorf("events: handshake write: %w", err)
	}
	br := bufio.NewReader(conn)
	resp, err := http.ReadResponse(br, nil)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("events: handshake read: %w", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusSwitchingProtocols {
		conn.Close()
		return nil, fmt.Errorf("events: handshake rejected: %s", resp.Status)
	}
	if got := resp.Header.Get("Sec-WebSocket-Accept"); got != acceptKey(key) {
		conn.Close()
		return nil, fmt.Errorf("events: bad Sec-WebSocket-Accept %q", got)
	}
	conn.SetDeadline(time.Time{})
	return &WSConn{conn: conn, br: br, client: true}, nil
}

// SetWriteDeadline bounds subsequent writes; a stalled peer surfaces as
// a timeout error from WriteText, which the server treats as a
// slow-consumer disconnect.
func (c *WSConn) SetWriteDeadline(t time.Time) error { return c.conn.SetWriteDeadline(t) }

// SetReadDeadline bounds subsequent reads.
func (c *WSConn) SetReadDeadline(t time.Time) error { return c.conn.SetReadDeadline(t) }

// writeFrame assembles one complete frame in c.wbuf and writes it with
// a single Write call, so concurrent writers cannot interleave frame
// bytes (callers still serialize frames themselves; the event writer is
// a single goroutine per connection).
func (c *WSConn) writeFrame(op byte, payload []byte) error {
	n := len(payload)
	buf := c.wbuf[:0]
	buf = append(buf, 0x80|op) // FIN set: no fragmentation
	maskBit := byte(0)
	if c.client {
		maskBit = 0x80
	}
	switch {
	case n < 126:
		buf = append(buf, maskBit|byte(n))
	case n < 1<<16:
		buf = append(buf, maskBit|126)
		buf = binary.BigEndian.AppendUint16(buf, uint16(n))
	default:
		buf = append(buf, maskBit|127)
		buf = binary.BigEndian.AppendUint64(buf, uint64(n))
	}
	if c.client {
		var mask [4]byte
		rand.Read(mask[:])
		buf = append(buf, mask[:]...)
		at := len(buf)
		buf = append(buf, payload...)
		for i := range buf[at:] {
			buf[at+i] ^= mask[i&3]
		}
	} else {
		buf = append(buf, payload...)
	}
	c.wbuf = buf
	_, err := c.conn.Write(buf)
	return err
}

// WriteText sends one text frame.
func (c *WSConn) WriteText(payload []byte) error { return c.writeFrame(opText, payload) }

// ReadMessage reads the next data frame's payload, transparently
// answering pings. A close frame (or a closed connection) returns
// io.EOF.
func (c *WSConn) ReadMessage() ([]byte, error) {
	for {
		var hdr [2]byte
		if _, err := io.ReadFull(c.br, hdr[:]); err != nil {
			return nil, err
		}
		op := hdr[0] & 0x0f
		masked := hdr[1]&0x80 != 0
		n := uint64(hdr[1] & 0x7f)
		switch n {
		case 126:
			var ext [2]byte
			if _, err := io.ReadFull(c.br, ext[:]); err != nil {
				return nil, err
			}
			n = uint64(binary.BigEndian.Uint16(ext[:]))
		case 127:
			var ext [8]byte
			if _, err := io.ReadFull(c.br, ext[:]); err != nil {
				return nil, err
			}
			n = binary.BigEndian.Uint64(ext[:])
		}
		if n > maxFrame {
			return nil, fmt.Errorf("events: frame of %d bytes exceeds limit", n)
		}
		var mask [4]byte
		if masked {
			if _, err := io.ReadFull(c.br, mask[:]); err != nil {
				return nil, err
			}
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(c.br, payload); err != nil {
			return nil, err
		}
		if masked {
			for i := range payload {
				payload[i] ^= mask[i&3]
			}
		}
		switch op {
		case opPing:
			if err := c.writeFrame(opPong, payload); err != nil {
				return nil, err
			}
		case opPong:
			// ignore
		case opClose:
			c.writeFrame(opClose, nil)
			return nil, io.EOF
		default:
			return payload, nil
		}
	}
}

// Close sends a close frame (best effort) and closes the connection.
func (c *WSConn) Close() error {
	c.conn.SetWriteDeadline(time.Now().Add(100 * time.Millisecond))
	c.writeFrame(opClose, nil)
	return c.conn.Close()
}

// ServeOptions tunes one ServeWS subscription.
type ServeOptions struct {
	// Job filters the stream to one job id ("" = firehose).
	Job string
	// Buffer bounds the subscriber channel (<= 0 = DefaultBuffer).
	Buffer int
	// WriteTimeout bounds each frame write; a consumer that stalls
	// longer is disconnected (<= 0 = 10s).
	WriteTimeout time.Duration
}

// ErrSlowConsumer is returned by ServeWS when the peer stalled past
// WriteTimeout (or failed a write) and was disconnected; callers count
// it against their stream-error metric.
var ErrSlowConsumer = errors.New("events: slow consumer disconnected")

// ServeWS upgrades the request and streams matching hub events to the
// peer, one deterministic JSON text frame per event, until the peer
// closes, the request context ends, or a write stalls past
// WriteTimeout. It returns nil on a clean client close and
// ErrSlowConsumer (wrapping the write error) on a stall — the
// subscription is torn down either way, so a dead browser can never
// pin hub resources.
func ServeWS(h *Hub, w http.ResponseWriter, r *http.Request, opt ServeOptions) error {
	timeout := opt.WriteTimeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	conn, err := Upgrade(w, r)
	if err != nil {
		return err
	}
	sub := h.Subscribe(opt.Job, opt.Buffer)
	defer sub.Close()
	defer conn.Close()

	// The reader goroutine exists to notice the peer going away (close
	// frame or dropped TCP) and to answer pings; data frames from the
	// peer are discarded.
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			if _, err := conn.ReadMessage(); err != nil {
				return
			}
		}
	}()

	ctxDone := r.Context().Done()
	var buf []byte
	for {
		select {
		case ev, ok := <-sub.C():
			if !ok {
				return nil
			}
			buf = ev.AppendJSON(buf[:0])
			conn.SetWriteDeadline(time.Now().Add(timeout))
			if err := conn.WriteText(buf); err != nil {
				return fmt.Errorf("%w: %w", ErrSlowConsumer, err)
			}
		case <-readerDone:
			return nil
		case <-ctxDone:
			return nil
		}
	}
}
