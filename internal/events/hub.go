package events

import (
	"sync"
	"sync/atomic"
	"time"
)

// DefaultBuffer is the per-subscriber channel depth used when Subscribe
// is called with buf <= 0: deep enough to absorb a burst of interval
// frames between writer wakeups, small enough that an abandoned
// subscriber costs little.
const DefaultBuffer = 256

// Hub fans events out to subscribers. Publishing never blocks: each
// subscriber owns a bounded channel, and a full channel drops the frame
// and counts it — a stalled consumer can slow only itself. With no
// subscribers Publish is a single atomic load and returns without
// stamping, copying or allocating, which is what lets the core's
// interval hook stay on the hot path under the zero-alloc guard.
//
// The zero value is ready to use.
type Hub struct {
	// Clock overrides the publication timestamp source (Unix
	// nanoseconds); nil means time.Now. Tests pin it for golden streams.
	Clock func() int64

	mu    sync.Mutex
	subs  map[*Subscriber]struct{}
	nsubs atomic.Int32 // len(subs), readable without the lock

	seq       atomic.Uint64
	published atomic.Uint64
	dropped   atomic.Uint64
}

// Subscriber is one registered consumer. Events arrive on C in
// publication order; frames the bounded buffer could not hold are
// counted in Dropped. Close unregisters and closes C.
type Subscriber struct {
	h       *Hub
	job     string // filter: only events with this Job (or job-less events); "" = firehose
	ch      chan Event
	dropped atomic.Uint64
	closed  bool // under h.mu
}

// Subscribe registers a consumer. job filters the stream to one job id
// ("" = firehose: everything); ring-membership and other job-less events
// pass every filter. buf bounds the delivery channel (<= 0 =
// DefaultBuffer).
func (h *Hub) Subscribe(job string, buf int) *Subscriber {
	if buf <= 0 {
		buf = DefaultBuffer
	}
	sub := &Subscriber{h: h, job: job, ch: make(chan Event, buf)}
	h.mu.Lock()
	if h.subs == nil {
		h.subs = make(map[*Subscriber]struct{})
	}
	h.subs[sub] = struct{}{}
	h.nsubs.Store(int32(len(h.subs)))
	h.mu.Unlock()
	return sub
}

// C returns the delivery channel. It is closed by Close.
func (s *Subscriber) C() <-chan Event { return s.ch }

// Dropped reports how many frames this subscriber's full buffer lost.
func (s *Subscriber) Dropped() uint64 { return s.dropped.Load() }

// Close unregisters the subscriber and closes its channel. Safe to call
// more than once and concurrently with Publish (removal and close
// happen under the hub lock, so no publish can send on a closed
// channel).
func (s *Subscriber) Close() {
	h := s.h
	h.mu.Lock()
	if !s.closed {
		s.closed = true
		delete(h.subs, s)
		h.nsubs.Store(int32(len(h.subs)))
		close(s.ch)
	}
	h.mu.Unlock()
}

// Publish stamps the event (Seq, TimeNS) and offers it to every
// matching subscriber without blocking. It reports how many subscribers
// received it. The no-subscriber fast path performs one atomic load and
// no allocation.
func (h *Hub) Publish(e Event) int {
	if h.nsubs.Load() == 0 {
		return 0
	}
	e.Seq = h.seq.Add(1)
	if c := h.Clock; c != nil {
		e.TimeNS = c()
	} else {
		e.TimeNS = time.Now().UnixNano()
	}
	delivered := 0
	h.mu.Lock()
	for sub := range h.subs {
		if sub.job != "" && e.Job != "" && e.Job != sub.job {
			continue
		}
		select {
		case sub.ch <- e:
			delivered++
		default:
			sub.dropped.Add(1)
			h.dropped.Add(1)
		}
	}
	h.mu.Unlock()
	h.published.Add(1)
	return delivered
}

// Published reports how many events were broadcast (no-subscriber
// publishes are not counted — nothing was on the bus to receive them).
func (h *Hub) Published() uint64 { return h.published.Load() }

// Dropped reports how many frame deliveries were lost to full
// subscriber buffers, summed over all subscribers.
func (h *Hub) Dropped() uint64 { return h.dropped.Load() }

// Subscribers reports the current subscriber count.
func (h *Hub) Subscribers() int { return int(h.nsubs.Load()) }
