// Microbench reproduces the paper's Table 1 study interactively: the two
// Listing 1 variations under Multi-Stream Squash Reuse (1/2/4 streams) and
// Register Integration (1/2/4 ways), reporting speedup over a no-reuse
// baseline plus the reconvergence classification that explains it.
package main

import (
	"fmt"
	"log"

	"mssr/internal/core"
	"mssr/internal/stats"
	"mssr/internal/workloads"
)

func main() {
	const iters = 4000
	for _, v := range []workloads.Variant{workloads.VariantNested, workloads.VariantLinear} {
		prog := workloads.Listing1(v, iters)
		base := core.New(prog, core.DefaultConfig())
		if err := base.Run(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: baseline IPC %.3f, %d branch mispredicts\n",
			v, base.Stats.IPC(), base.Stats.BranchMispredicts)

		for _, streams := range []int{1, 2, 4} {
			c := core.New(prog, core.MultiStreamConfig(streams, 64))
			if err := c.Run(); err != nil {
				log.Fatal(err)
			}
			st := c.Stats
			fmt.Printf("  rgid %d stream(s): %+6.1f%%  (reuse %d, reconvergence simple/sw/hw = %d/%d/%d)\n",
				streams, 100*stats.Speedup(base.Stats, st), st.ReuseHits,
				st.ReconvByType[stats.ReconvSimple],
				st.ReconvByType[stats.ReconvSoftware],
				st.ReconvByType[stats.ReconvHardware])
		}
		for _, ways := range []int{1, 2, 4} {
			c := core.New(prog, core.RIConfigOf(64, ways))
			if err := c.Run(); err != nil {
				log.Fatal(err)
			}
			var repl uint64
			for _, x := range c.Stats.RIReplacements {
				repl += x
			}
			fmt.Printf("  ri %d way(s):      %+6.1f%%  (integrations %d, table replacements %d)\n",
				ways, 100*stats.Speedup(base.Stats, c.Stats), c.Stats.RIHits, repl)
		}
	}
}
