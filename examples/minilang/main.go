// Minilang shows the structured workload-authoring layer: a branchy
// histogram kernel written with minic's expressions and statements instead
// of hand-allocated assembly, then run under the paper's mechanism.
package main

import (
	"fmt"
	"log"

	"mssr/internal/core"
	"mssr/internal/emu"
	"mssr/internal/minic"
	"mssr/internal/stats"
)

func main() {
	p := minic.NewProgram("histogram")
	data := p.Array(0, randomWords(512))
	hist := p.Array(0x90000, make([]uint64, 16))
	i := p.Var("i")
	v := p.Var("v")
	rounds := p.Var("rounds")

	p.For(rounds, minic.Int(0), minic.Int(20), func() {
		p.For(i, minic.Int(0), minic.Int(512), func() {
			p.Assign(v, data.At(i))
			// The bucket choice is data dependent and hard to predict;
			// the histogram update after it is control independent.
			p.IfElse(minic.Eq(minic.And(v, minic.Int(1)), minic.Int(0)),
				func() { p.Assign(v, minic.And(minic.Shr(v, minic.Int(3)), minic.Int(7))) },
				func() { p.Assign(v, minic.Add(minic.And(minic.Shr(v, minic.Int(7)), minic.Int(7)), minic.Int(8))) })
			p.SetAt(hist, v, minic.Add(hist.At(v), minic.Int(1)))
		})
	})
	p.Return(hist.At(minic.Int(3)))
	prog := p.MustBuild()

	e := emu.New(prog)
	if err := e.Run(100_000_000); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("histogram kernel: %d instructions, hist[3] = %d\n",
		e.Retired, e.Mem.Read(minic.ResultAddr))

	base := core.New(prog, core.DefaultConfig())
	if err := base.Run(); err != nil {
		log.Fatal(err)
	}
	c := core.New(prog, core.MultiStreamConfig(4, 64))
	if err := c.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline: %s\n", base.Stats)
	fmt.Printf("rgid:     %s\n", c.Stats)
	fmt.Printf("speedup:  %+.1f%%\n", 100*stats.Speedup(base.Stats, c.Stats))
}

func randomWords(n int) []uint64 {
	out := make([]uint64, n)
	x := uint64(0x243f6a8885a308d3)
	for i := range out {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		out[i] = x
	}
	return out
}
