// Quickstart: assemble a small program, run it on the functional emulator
// and on the out-of-order core with Multi-Stream Squash Reuse, and verify
// both agree.
package main

import (
	"fmt"
	"log"

	"mssr/internal/asm"
	"mssr/internal/core"
	"mssr/internal/emu"
)

func main() {
	// A loop with a data-dependent branch: the `xor`-derived condition is
	// effectively random, so the branch mispredicts often, and the tail
	// after `merge` is control independent — squash reuse territory.
	prog, err := asm.Assemble("quickstart", `
    li   s1, 2000        # iterations
    li   a0, 0           # accumulator
    li   t2, 0x9e3779b9
loop:
    mul  t0, s1, t2      # pseudo-random condition input
    srli t1, t0, 13
    xor  t0, t0, t1
    andi t0, t0, 1
    beqz t0, else        # hard-to-predict branch
    addi a0, a0, 3
    j    merge
else:
    addi a0, a0, 5
merge:
    mul  t3, s1, s1      # control-independent tail
    add  a0, a0, t3
    addi s1, s1, -1
    bnez s1, loop
    halt
`)
	if err != nil {
		log.Fatal(err)
	}

	// Functional reference.
	ref, err := emu.RunProgram(prog, 1_000_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("emulator: a0 = %d after %d instructions\n", ref.Regs[10], ref.Retired)

	// Timing simulation, with and without the paper's mechanism.
	for _, cfg := range []struct {
		name string
		c    core.Config
	}{
		{"no reuse     ", core.DefaultConfig()},
		{"rgid 4x64    ", core.MultiStreamConfig(4, 64)},
	} {
		c := core.New(prog, cfg.c)
		if err := c.Run(); err != nil {
			log.Fatal(err)
		}
		if got := c.Result(); got != ref {
			log.Fatalf("%s diverged from the emulator", cfg.name)
		}
		fmt.Printf("%s %s\n", cfg.name, c.Stats)
	}
}
