// Customcpu demonstrates configuring the simulator beyond the paper's
// defaults: a narrower core, the Bloom-filter reused-load policy (§3.8.3),
// and the multiple-block fetching extension (§3.9.1) — the public
// configuration surface a downstream user would explore.
package main

import (
	"fmt"
	"log"

	"mssr/internal/core"
	"mssr/internal/reuse"
	"mssr/internal/stats"
	"mssr/internal/workloads"
)

func main() {
	w, err := workloads.ByName("xz")
	if err != nil {
		log.Fatal(err)
	}
	prog := w.Build() // xz: store-load aliasing stresses the load policies

	narrow := core.DefaultConfig()
	narrow.RenameWidth = 4
	narrow.CommitWidth = 4
	narrow.ALUs = 2

	verify := core.MultiStreamConfig(4, 64)

	bloom := core.MultiStreamConfig(4, 64)
	bloom.MS.LoadPolicy = reuse.LoadBloom

	noLoads := core.MultiStreamConfig(4, 64)
	noLoads.MS.LoadPolicy = reuse.LoadNoReuse

	twoBlock := core.MultiStreamConfig(4, 64)
	twoBlock.BlocksPerCycle = 2 // §3.9.1 multiple-block fetching

	base := core.New(prog, core.DefaultConfig())
	if err := base.Run(); err != nil {
		log.Fatal(err)
	}

	configs := []struct {
		name string
		cfg  core.Config
	}{
		{"4-wide core, no reuse", narrow},
		{"rgid, verify loads", verify},
		{"rgid, bloom-filter loads", bloom},
		{"rgid, loads not reused", noLoads},
		{"rgid + 2-block fetch", twoBlock},
	}
	fmt.Printf("workload %s: baseline %s\n", w.Name, base.Stats)
	for _, c := range configs {
		sim := core.New(prog, c.cfg)
		if err := sim.Run(); err != nil {
			log.Fatal(err)
		}
		st := sim.Stats
		fmt.Printf("  %-26s IPC %.3f (%+.1f%%)  reused-loads %d  verifications %d  violations %d  bloom-rejects %d\n",
			c.name, st.IPC(), 100*stats.Speedup(base.Stats, st),
			st.ReusedLoads, st.LoadVerifications, st.MemOrderViolations, st.BloomFilterRejects)
	}
}
