// Graphkernels runs the GAP-style suite (bc, bfs, cc, pr, sssp, tc) with
// and without Multi-Stream Squash Reuse, the workloads where the paper
// reports its largest gains, and prints per-kernel improvements alongside
// the branch behaviour that drives them.
package main

import (
	"fmt"
	"log"

	"mssr/internal/core"
	"mssr/internal/stats"
	"mssr/internal/workloads"
)

func main() {
	fmt.Printf("%-6s %10s %10s %9s %9s %9s %9s\n",
		"kernel", "base-IPC", "rgid-IPC", "speedup", "mispred%", "reuse", "reconv")
	for _, w := range workloads.Suite("gap") {
		prog := w.Build()
		base := core.New(prog, core.DefaultConfig())
		if err := base.Run(); err != nil {
			log.Fatal(err)
		}
		c := core.New(prog, core.MultiStreamConfig(4, 64))
		if err := c.Run(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6s %10.3f %10.3f %8.1f%% %8.1f%% %9d %9d\n",
			w.Name, base.Stats.IPC(), c.Stats.IPC(),
			100*stats.Speedup(base.Stats, c.Stats),
			100*base.Stats.MispredictRate(),
			c.Stats.ReuseHits, c.Stats.Reconvergences)
	}
}
