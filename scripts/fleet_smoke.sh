#!/usr/bin/env bash
# Fleet smoke test: two msrd workers (one static, one joining via
# -register), one msrfleet coordinator, one sharded msrbench sweep
# through the coordinator, then assertions on ring membership and the
# aggregated /metrics exposition. CI runs this to prove the binaries
# compose outside the Go test harness.
set -euo pipefail

COORD=127.0.0.1:18370
W1=127.0.0.1:18371
W2=127.0.0.1:18372
DIR=$(mktemp -d)
PIDS=()

cleanup() {
  for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  wait 2>/dev/null || true
  rm -rf "$DIR"
}
trap cleanup EXIT

echo "== building"
go build -o "$DIR/msrd" ./cmd/msrd
go build -o "$DIR/msrfleet" ./cmd/msrfleet
go build -o "$DIR/msrbench" ./cmd/msrbench
go build -o "$DIR/msrtail" ./cmd/msrtail

echo "== starting workers and coordinator"
"$DIR/msrd" -addr "$W1" -store "$DIR/store1" -log-level warn &
PIDS+=($!)
"$DIR/msrfleet" -addr "$COORD" -workers "http://$W1" -health-interval 250ms -log-level info &
PIDS+=($!)
"$DIR/msrd" -addr "$W2" -store "$DIR/store2" -register "http://$COORD" -log-level warn &
PIDS+=($!)

wait_until() { # wait_until <seconds> <cmd...>
  local deadline=$(( $(date +%s) + $1 )); shift
  until "$@" >/dev/null 2>&1; do
    if [ "$(date +%s)" -ge "$deadline" ]; then
      echo "timed out waiting for: $*" >&2
      return 1
    fi
    sleep 0.2
  done
}

two_workers_healthy() {
  curl -fsS "http://$COORD/fleet/v1/workers" | grep -o '"healthy":true' | wc -l | grep -qx 2
}

wait_until 30 curl -fsS "http://$COORD/readyz"
wait_until 30 two_workers_healthy
echo "== ring has two healthy workers"

echo "== tailing the fleet event bus"
# A headless subscriber captures the whole run's lifecycle + telemetry
# stream and asserts queued -> start -> done ordering per job. The
# archive lands in the repo cwd (not $DIR) so CI can keep it.
"$DIR/msrtail" -addr "$COORD" -assert-order -out EVENTS_PR9.ndjson &
TAIL_PID=$!
PIDS+=($TAIL_PID)
subscriber_attached() {
  curl -fsS "http://$COORD/metrics" | grep -q '^msrfleet_ws_connections [1-9]'
}
wait_until 30 subscriber_attached

echo "== sharded sweep through the coordinator"
"$DIR/msrbench" -remote "$COORD" -exp table1 -scale 0 >"$DIR/table1.txt"
grep -q . "$DIR/table1.txt"

echo "== repeating the sweep (served from worker caches)"
"$DIR/msrbench" -remote "$COORD" -exp table1 -scale 0 >/dev/null

METRICS=$(curl -fsS "http://$COORD/metrics")
echo "$METRICS" | grep -q '^msrfleet_jobs_completed_total [1-9]' || {
  echo "coordinator completed no jobs" >&2; exit 1; }
echo "$METRICS" | grep -q 'msrd_jobs_submitted_total{worker="http://'"$W1"'"}' || {
  echo "aggregated metrics missing worker 1 series" >&2; exit 1; }
echo "$METRICS" | grep -q 'msrd_jobs_submitted_total{worker="http://'"$W2"'"}' || {
  echo "aggregated metrics missing worker 2 series" >&2; exit 1; }
# The second sweep must have been served from the workers' caches.
HITS=$(echo "$METRICS" | awk '/^msrd_cache_hits_total\{/ {sum += $2} END {print sum+0}')
[ "${HITS:-0}" -ge 1 ] || { echo "no cache hits across the fleet" >&2; exit 1; }

echo "== multi-fidelity spec through the coordinator"
# A fast-forwarded sampled spec exercises the fidelity fields of the wire
# format end to end: the canonical key (distinct from the full-detail
# run's), sharding, and the extrapolated result round-trip.
# sample_interval makes the detailed windows emit live interval frames,
# which must relay up to the coordinator's event bus (asserted below).
FIDSPEC='{"specs":[{"workload":"mcf","scale":0,"engine":"rgid","fast_forward":400,"detailed_window":200,"sample_periods":4,"sample_interval":64,"warm":true}]}'
JOB=$(curl -fsS -X POST -d "$FIDSPEC" "http://$COORD/v1/jobs" | sed -n 's/.*"job_id":"\([^"]*\)".*/\1/p')
[ -n "$JOB" ] || { echo "fidelity job submission failed" >&2; exit 1; }
job_done() {
  curl -fsS "http://$COORD/v1/jobs/$JOB" | grep -q '"state":"done"'
}
wait_until 30 job_done
FIDRES=$(curl -fsS "http://$COORD/v1/jobs/$JOB")
echo "$FIDRES" | grep -q '"extrapolated":true' || {
  echo "fidelity result not extrapolated: $FIDRES" >&2; exit 1; }
echo "$FIDRES" | grep -q '"fast_forwarded":' || {
  echo "fidelity result missing fast_forwarded count: $FIDRES" >&2; exit 1; }
# Resubmitting the identical spec must be a cache hit somewhere in the ring.
JOB2=$(curl -fsS -X POST -d "$FIDSPEC" "http://$COORD/v1/jobs" | sed -n 's/.*"job_id":"\([^"]*\)".*/\1/p')
job2_done() {
  curl -fsS "http://$COORD/v1/jobs/$JOB2" | grep -q '"state":"done"'
}
wait_until 30 job2_done
curl -fsS "http://$COORD/v1/jobs/$JOB2" | grep -q '"cache_hits":1' || {
  echo "repeated fidelity spec was not served from cache" >&2; exit 1; }

echo "== checkpoint-sharded sweep through the coordinator"
# Two cold fast-forwarded specs over the same program but different
# engine geometries: distinct canonical keys (no result-cache reuse),
# one shard key. Both must home to the same worker, the first filling
# that worker's checkpoint store and the second restoring from it —
# cross-config checkpoint sharing, asserted on the aggregated
# per-worker msrd_ckpt_* series.
CKSPEC1='{"specs":[{"workload":"mcf","scale":0,"engine":"rgid","fast_forward":400,"detailed_window":200,"sample_periods":4}]}'
CKSPEC2='{"specs":[{"workload":"mcf","scale":0,"engine":"rgid","streams":8,"entries":128,"fast_forward":400,"detailed_window":200,"sample_periods":4}]}'
for SPEC in "$CKSPEC1" "$CKSPEC2"; do
  CKJOB=$(curl -fsS -X POST -d "$SPEC" "http://$COORD/v1/jobs" | sed -n 's/.*"job_id":"\([^"]*\)".*/\1/p')
  [ -n "$CKJOB" ] || { echo "checkpointed job submission failed" >&2; exit 1; }
  ckjob_done() {
    curl -fsS "http://$COORD/v1/jobs/$CKJOB" | grep -q '"state":"done"'
  }
  wait_until 30 ckjob_done
done
METRICS=$(curl -fsS "http://$COORD/metrics")
CKHITS=$(echo "$METRICS" | awk '/^msrd_ckpt_hits_total\{/ {sum += $2} END {print sum+0}')
[ "${CKHITS:-0}" -ge 1 ] || { echo "no checkpoint hits across the fleet" >&2; exit 1; }
# The hits must sit on the worker that owns the mcf@s0 shard — i.e. on
# exactly one worker, the same one whose store the first sweep filled.
OWNERS=$(echo "$METRICS" | awk '/^msrd_ckpt_hits_total\{/ && $2 > 0' | wc -l)
[ "$OWNERS" -eq 1 ] || { echo "checkpoint hits spread across $OWNERS workers (shard homing broken)" >&2; exit 1; }
echo "== checkpoint sharing OK ($CKHITS restores on the owning worker)"

echo "== validating the captured event stream"
# Give trailing frames a beat to flush, then stop the tail; msrtail
# exits 1 on any per-job ordering violation, 0 on a clean capture.
sleep 1
kill -TERM "$TAIL_PID"
if ! wait "$TAIL_PID"; then
  echo "msrtail reported order violations or a broken stream" >&2; exit 1
fi
for TYPE in job_queued job_start spec_dispatched spec_done job_done interval; do
  grep -q '"type":"'"$TYPE"'"' EVENTS_PR9.ndjson || {
    echo "event archive carries no $TYPE events" >&2; exit 1; }
done
grep -q '"worker":"http://'"$W1"'"\|"worker":"http://'"$W2"'"' EVENTS_PR9.ndjson || {
  echo "event archive carries no worker labels" >&2; exit 1; }
EVENTS=$(wc -l < EVENTS_PR9.ndjson)
echo "== event archive OK ($EVENTS frames)"

echo "== fleet smoke OK (fleet-wide cache hits: $HITS)"
